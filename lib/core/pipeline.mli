(** End-to-end (ε, δ) estimation: sample faults, strip, and test whether
    the survivor still performs (paper, §3's definition made operational).

    The (ε, δ)-property asks that the surviving normal-state switches
    contain the desired network with probability > δ.  Containment is
    verified exactly only for tiny networks; the operational proxies here
    follow the paper's own §4 recipe — strip faulty vertices, then route
    greedily — and report which step failed:

    - [Shorted]: two terminals contracted by closed failures (Lemma 7);
    - [Isolated]: an input lost all its paths to the outputs (Lemma 3);
    - [Unroutable]: the stripped network failed to route the probe
      workload (a sampled permutation and/or superconcentrator probes);
    - [Survived]: everything passed. *)

type verdict =
  | Survived
  | Shorted of (int * int) list
  | Isolated of int list
  | Unroutable of int  (** number of failed probe requests *)

type probe = {
  greedy_permutations : int;
      (** permutations routed greedily — probes {e nonblocking}-style
          operation (the paper's §4 claim is that greedy routing works on
          𝒩; it does {e not} work on merely-rearrangeable networks such as
          Beneš even fault-free) *)
  exact_permutations : int;
      (** permutations routed by exact backtracking — probes the
          {e rearrangeable} property *)
  exact_budget : int;  (** backtracking budget per permutation *)
  sc_probes : int;
      (** random (r, S, T) flow probes — the {e superconcentrator}
          property, exactly decidable per probe by Menger *)
  majority_probes : int;
      (** sampled busy configurations checked for Lemma 6's
          majority-access property — the paper's own sufficient condition
          for nonblocking containment (§6) *)
}

val default_probe : probe
(** one greedy permutation, no exact permutations, two flow probes *)

val sc_probe_only : probe
(** flow probes only — the class-fair workload for comparing networks that
    are not nonblocking *)

val rearrangeable_probe : probe
(** exact permutations + flow probes *)

val lemma6_probe : probe
(** majority-access samples only — the §6 certificate route *)

val trial :
  rng:Ftcsn_prng.Rng.t ->
  eps:float ->
  ?strip_radius:int ->
  ?probe:probe ->
  Ftcsn_networks.Network.t ->
  verdict
(** One fault sample at ε₁ = ε₂ = [eps], stripped and probed.  This is
    the legacy allocating path, kept as the reference oracle; hot loops
    use {!trial_ws}. *)

type ws
(** Per-domain trial workspace: strip state
    ({!Ftcsn_networks.Network.t}-sized bitsets, union-find, BFS arrays),
    a greedy router with its scratch, and a prebuilt Menger flow arena.
    Probes run over the original graph under the strip's vertex/edge
    masks, so no per-trial subgraph is ever rebuilt.  Single-domain
    state: create one per worker via the {!Ftcsn_sim.Trials.run_scratch}
    [~init] hook (as {!survival} does). *)

val create_ws : Ftcsn_networks.Network.t -> ws

val ws_fault_strip : ws -> Fault_strip.ws
(** The workspace's strip state — valid after a {!trial_ws} for
    inspecting the last trial's masks and shorted/stripped sets. *)

val trial_ws :
  ?strip_radius:int ->
  ?probe:probe ->
  ws ->
  rng:Ftcsn_prng.Rng.t ->
  eps:float ->
  verdict
(** {!trial} on the workspace: identical PRNG draw order and identical
    verdicts (the qcheck suite pins agreement with {!trial}), with the
    steady-state allocating only probe permutations/index sets and
    returned paths. *)

val survival :
  ?jobs:int ->
  ?target_ci:float ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  eps:float ->
  ?strip_radius:int ->
  ?probe:probe ->
  Ftcsn_networks.Network.t ->
  Ftcsn_reliability.Monte_carlo.estimate
(** Monte-Carlo estimate of P[trial = Survived], on the
    {!Ftcsn_sim.Trials} engine: one substream per trial, so the estimate
    is identical at every [jobs]; [target_ci] stops early once the Wilson
    95% half-width is small enough.  [trace] streams the engine's
    structured JSONL events (chunk timings, stopping decisions) without
    perturbing the estimate.  Trials run on the {!ws} workspace path (one
    workspace per worker domain); estimates are bit-identical to the
    legacy {!trial} loop. *)

val survival_curve :
  ?jobs:int ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  eps:float array ->
  ?strip_radius:int ->
  ?probe:probe ->
  Ftcsn_networks.Network.t ->
  Ftcsn_reliability.Monte_carlo.estimate array
(** Coupled survival curve over an ε grid in one fan-out of [trials]
    trials (common random numbers, {!Ftcsn_sim.Trials.sweep}).  Each
    trial draws one uniform per edge, thresholds that draw vector at
    every grid point, and probes each resulting survivor with a fresh
    copy of the trial substream — exactly the stream an independent
    {!survival} run at that ε would use — so {e every point of the
    curve is bit-identical to an independent [survival] run} at that ε
    with the same [rng] state and [trials] (no [target_ci]), while the
    whole curve costs roughly one run's sampling plus the un-skippable
    probing.

    On a nondecreasing grid the nested-fault-set structure makes
    [Isolated] (always) and flow-probe [Unroutable] (when [probe] has
    only [sc_probes]) persist at every later point, so trials
    short-circuit their remaining points once such a verdict occurs —
    identical results, a fraction of the probe work.  [Shorted] and
    non-flow probes are re-evaluated at every point (not monotone).

    Estimates across the curve are positively correlated — ideal for
    reading off threshold locations and curve differences (Raginsky-
    style phase-transition plots) at far lower variance than pointwise
    independent runs. *)

val verdict_label : verdict -> string
