module Topology = Ftcsn_networks.Topology
module Network = Ftcsn_networks.Network
module Rng = Ftcsn_prng.Rng
module Monte_carlo = Ftcsn_reliability.Monte_carlo
module Trials = Ftcsn_sim.Trials
module Traffic = Ftcsn_des.Traffic
module Batch_means = Ftcsn_des.Batch_means
module Table = Ftcsn_util.Table
module Json = Ftcsn_obs.Json

type entry = {
  gen : Topology.gen;
  spec : string;
  net_name : string;
  n : int;
  n_requested : int;
  size : int;
  depth : int;
  edges_per_terminal : float;
  survival : Monte_carlo.estimate array;
  blocking_mean : float;
  blocking_ci_low : float;
  blocking_ci_high : float;
  catastrophes : int;
  pareto : bool;
}

type outcome = {
  eps : float array;
  entries : entry list;
  skipped : (string * string) list;
}

(* survival at the harshest grid point — the fault-tolerance score the
   Pareto front is computed on *)
let score e = e.survival.(Array.length e.survival - 1).Trials.mean

let mark_pareto entries =
  List.map
    (fun e ->
      let dominated =
        List.exists
          (fun o ->
            o != e
            && o.edges_per_terminal <= e.edges_per_terminal
            && score o >= score e
            && (o.edges_per_terminal < e.edges_per_terminal
               || score o > score e))
          entries
      in
      { e with pareto = not dominated })
    entries

let run ?jobs ?trace ?progress ?note ?load ?(mtbf = 500.0) ?(mttr = 10.0)
    ~trials ~eps ~traffic_trials ~calls ~warmup ~n ~seed () =
  if Array.length eps = 0 then invalid_arg "Tournament.run: empty eps grid";
  Ft_topology.install ();
  let entries = ref [] and skipped = ref [] in
  List.iter
    (fun (gen : Topology.gen) ->
      (match note with Some f -> f gen.Topology.name | None -> ());
      let spec = { Topology.family = gen.Topology.name; args = [] } in
      (* seed offsets mirror ftnet's Seeds module: the same --seed
         denotes the same network (0), the same survival stream (4) and
         the same traffic stream (7) as the standalone subcommands *)
      match Topology.build ~n ~rng:(Rng.create ~seed) spec with
      | Error msg -> skipped := (gen.Topology.name, msg) :: !skipped
      | Ok b ->
          let net = b.Topology.net in
          let n_eff = b.Topology.n_effective in
          let survival =
            Pipeline.survival_curve ?jobs ?progress ?trace ~trials
              ~rng:(Rng.create ~seed:(seed + 4))
              ~eps ~probe:Pipeline.sc_probe_only net
          in
          let load =
            match load with Some l -> l | None -> float_of_int n_eff /. 4.0
          in
          let config =
            Traffic.config ~load ~mtbf ~mttr
              ~stop:(Traffic.Calls { warmup; measured = calls })
              ()
          in
          let s =
            Traffic.estimate ?jobs ?trace
              ~label:("tournament." ^ gen.Topology.name)
              ~trials:traffic_trials
              ~rng:(Rng.create ~seed:(seed + 7))
              ~config net
          in
          let blocking = s.Traffic.blocking in
          entries :=
            {
              gen;
              spec = Topology.to_string spec;
              net_name = net.Network.name;
              n = n_eff;
              n_requested = b.Topology.n_requested;
              size = Network.size net;
              depth = Network.depth net;
              edges_per_terminal =
                float_of_int (Network.size net) /. float_of_int n_eff;
              survival;
              blocking_mean = blocking.Batch_means.mean;
              blocking_ci_low = blocking.Batch_means.ci_low;
              blocking_ci_high = blocking.Batch_means.ci_high;
              catastrophes = s.Traffic.catastrophes;
              pareto = false;
            }
            :: !entries)
    (Topology.all ());
  let entries =
    List.sort
      (fun a b -> compare a.edges_per_terminal b.edges_per_terminal)
      (mark_pareto !entries)
  in
  { eps; entries; skipped = List.rev !skipped }

let to_table { eps; entries; skipped = _ } =
  let lo = eps.(0) and hi = eps.(Array.length eps - 1) in
  let t =
    Table.create
      ~title:"tournament: fault tolerance vs edges per terminal"
      ~columns:
        [
          ("family", Table.Left); ("n", Table.Right); ("size", Table.Right);
          ("depth", Table.Right); ("edges/term", Table.Right);
          (Printf.sprintf "surv@%g" lo, Table.Right);
          (Printf.sprintf "surv@%g" hi, Table.Right);
          ("blocking", Table.Right); ("front", Table.Left);
        ]
  in
  List.iter
    (fun e ->
      Table.add_row t
        [
          e.gen.Topology.name; Table.fi e.n; Table.fi e.size; Table.fi e.depth;
          Table.ff ~decimals:1 e.edges_per_terminal;
          Table.ff ~decimals:3 e.survival.(0).Trials.mean;
          Table.ff ~decimals:3 (score e);
          Table.ff ~decimals:4 e.blocking_mean;
          (if e.pareto then "*" else "");
        ])
    entries;
  t

let to_json { eps; entries; skipped } =
  let curve e =
    Json.List
      (Array.to_list
         (Array.mapi
            (fun k (est : Trials.estimate) ->
              Json.Obj
                [
                  ("eps", Json.Float eps.(k));
                  ("mean", Json.Float est.Trials.mean);
                  ("ci_low", Json.Float est.Trials.ci_low);
                  ("ci_high", Json.Float est.Trials.ci_high);
                  ("successes", Json.Int est.Trials.successes);
                  ("trials", Json.Int est.Trials.trials);
                ])
            e.survival))
  in
  Json.Obj
    [
      ("eps", Json.List (Array.to_list (Array.map (fun e -> Json.Float e) eps)));
      ( "entries",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("family", Json.String e.gen.Topology.name);
                   ("spec", Json.String e.spec);
                   ("net", Json.String e.net_name);
                   ("n", Json.Int e.n);
                   ("n_requested", Json.Int e.n_requested);
                   ("size", Json.Int e.size);
                   ("depth", Json.Int e.depth);
                   ("edges_per_terminal", Json.Float e.edges_per_terminal);
                   ("survival", curve e);
                   ("blocking", Json.Float e.blocking_mean);
                   ("blocking_ci_low", Json.Float e.blocking_ci_low);
                   ("blocking_ci_high", Json.Float e.blocking_ci_high);
                   ("catastrophes", Json.Int e.catastrophes);
                   ("pareto", Json.Bool e.pareto);
                 ])
             entries) );
      ( "skipped",
        Json.List
          (List.map
             (fun (family, reason) ->
               Json.Obj
                 [
                   ("family", Json.String family);
                   ("reason", Json.String reason);
                 ])
             skipped) );
    ]
