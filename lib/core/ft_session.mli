(** Degradation sessions: switches fail {e while} the network operates.

    The paper's model draws one fault pattern up front; operationally the
    same hardware degrades over time.  This simulator ages a network —
    each tick every still-normal switch fails open or closed with a
    per-tick hazard — while call traffic arrives and departs.  Calls whose
    paths lose a switch are dropped and immediately rerouted through the
    survivor if possible.  The run ends early if closed failures ever
    contract two terminals (the Lemma 7 catastrophe).

    This quantifies the paper's qualitative promise: an (ε, δ)-network
    keeps serving until the accumulated failure fraction approaches ε.

    The simulation itself runs on the continuous-time engine
    ([Ftcsn_des.Traffic]); this module is a thin compatibility layer
    that translates the historical tick-based parameters — a per-tick
    hazard becomes an exponential failure clock with [mtbf = 1/hazard],
    [ticks] becomes the time horizon — and translates the engine's
    continuous-time statistics back.  [blocked] still counts only
    requests between idle terminals that found no path (the paper's
    nonblocking violation), never system-full losses. *)

type stats = {
  ticks : int;  (** ticks actually executed *)
  placed : int;  (** calls successfully placed (incl. reroutes) *)
  blocked : int;  (** call attempts that found no idle fault-free path *)
  dropped : int;  (** live calls severed by a new failure *)
  rerouted : int;  (** dropped calls immediately re-placed *)
  failed_switches : int;  (** cumulative failures at the end *)
  catastrophe_at : int option;
      (** tick at which two terminals contracted, if ever *)
}

val run :
  rng:Ftcsn_prng.Rng.t ->
  hazard:float ->
  arrival:float ->
  ticks:int ->
  Ftcsn_networks.Network.t ->
  stats
(** [run ~rng ~hazard ~arrival ~ticks net]: per tick, every normal switch
    fails with probability [hazard] (split evenly open/closed); with
    probability [arrival] a random idle input calls a random idle output,
    otherwise a random live call hangs up. *)

val mean_time_to_degradation :
  ?jobs:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  rng:Ftcsn_prng.Rng.t ->
  hazard:float ->
  trials:int ->
  max_ticks:int ->
  Ftcsn_networks.Network.t ->
  float
(** Average tick of the first service failure (block, unrecovered drop,
    or catastrophe) under saturating traffic; [max_ticks] when service
    never failed within the horizon.  Trials run on the
    {!Ftcsn_sim.Trials} engine (one substream per trial), so the mean is
    identical at every [jobs]. *)
