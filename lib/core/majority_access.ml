module Network = Ftcsn_networks.Network
module Traverse = Ftcsn_graph.Traverse

let accessible net ~allowed ~busy ~from ~targets =
  let ok v = allowed v && not (busy v) in
  if not (ok from) then 0
  else begin
    let dist = Traverse.bfs_directed ~allowed:ok net.Network.graph ~sources:[ from ] in
    Array.fold_left
      (fun acc t -> if dist.(t) >= 0 && ok t then acc + 1 else acc)
      0 targets
  end

let input_access_counts net ~allowed ~busy =
  Array.map
    (fun i ->
      if busy i then -1
      else accessible net ~allowed ~busy ~from:i ~targets:net.Network.outputs)
    net.Network.inputs

let is_majority_access net ~allowed ~busy =
  let half = Network.n_outputs net / 2 in
  Array.for_all
    (fun c -> c = -1 || c > half)
    (input_access_counts net ~allowed ~busy)

let middle_stage ?edge_ok net =
  let staged =
    Ftcsn_graph.Staged.of_sources ?edge_ok net.Network.graph
      ~sources:(Array.to_list net.Network.inputs)
  in
  let mid = staged.Ftcsn_graph.Staged.stages / 2 in
  Array.of_list (Ftcsn_graph.Staged.vertices_at staged mid)

(* every idle terminal on one side must reach (along the given
   orientation) strictly more than half of the waist through idle allowed
   vertices *)
let side_majority ?edge_ok g ~allowed ~busy ~terminals ~waist =
  let half = Array.length waist / 2 in
  Array.for_all
    (fun t ->
      if busy t then true
      else begin
        let ok v = allowed v && not (busy v) in
        let dist = Traverse.bfs_directed ~allowed:ok ?edge_ok g ~sources:[ t ] in
        let reached =
          Array.fold_left
            (fun acc w -> if dist.(w) >= 0 && ok w then acc + 1 else acc)
            0 waist
        in
        reached > half
      end)
    terminals

let sampled_busy_majority ~trials ~rng ?(load = 0.5) ~allowed ?edge_ok ?rev net =
  let module Rng = Ftcsn_prng.Rng in
  let module Greedy = Ftcsn_routing.Greedy in
  let n = min (Network.n_outputs net) (Network.n_inputs net) in
  let k = max 0 (int_of_float (load *. float_of_int n)) in
  let waist = middle_stage ?edge_ok net in
  let g = net.Network.graph in
  let rev =
    match rev with Some r -> r | None -> Ftcsn_graph.Digraph.reverse g
  in
  let ok = ref true in
  let t = ref 0 in
  while !ok && !t < trials do
    incr t;
    let sub = Rng.split rng in
    (* establish a random partial permutation of k calls *)
    let router = Greedy.create ~allowed ?edge_ok net in
    let ins = Rng.sample_without_replacement sub ~n ~k in
    let outs = Rng.sample_without_replacement sub ~n ~k in
    let perm = Rng.permutation sub k in
    Array.iteri
      (fun idx i ->
        ignore
          (Greedy.route router ~input:net.Network.inputs.(i)
             ~output:net.Network.outputs.(outs.(perm.(idx)))))
      ins;
    let busy v = Greedy.busy router v in
    if
      not
        (side_majority ?edge_ok g ~allowed ~busy ~terminals:net.Network.inputs
           ~waist
        && side_majority ?edge_ok rev ~allowed ~busy
             ~terminals:net.Network.outputs ~waist)
    then ok := false
  done;
  !ok

let grid_last_column_access (s : Directed_grid.standalone) ~faulty ~source_row =
  let grid = s.Directed_grid.grid in
  let src = Directed_grid.vertex_at grid ~row:source_row ~col:0 in
  if faulty src then 0
  else begin
    let ok v = not (faulty v) in
    let dist = Traverse.bfs_directed ~allowed:ok s.Directed_grid.graph ~sources:[ src ] in
    Array.fold_left
      (fun acc v -> if dist.(v) >= 0 && ok v then acc + 1 else acc)
      0
      grid.Directed_grid.columns.(grid.Directed_grid.stages - 1)
  end
