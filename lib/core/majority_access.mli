(** Majority-access analysis (paper, Lemmas 3 and 6).

    Given established vertex-disjoint paths (busy vertices) and a set of
    faulty vertices, an idle vertex has {e access} to another if a path of
    idle non-faulty vertices joins them.  A network is a
    {e majority-access network} when every idle input has access to a
    strict majority of the outputs; if both 𝒩 and its mirror are
    majority-access and no terminals are shorted, 𝒩 contains a nonblocking
    network (§6).  This module counts access sets, decides the property
    for concrete fault/busy configurations, and runs Lemma 3's grid
    version. *)

val accessible :
  Ftcsn_networks.Network.t ->
  allowed:(int -> bool) ->
  busy:(int -> bool) ->
  from:int ->
  targets:int array ->
  int
(** Number of [targets] reachable from vertex [from] through vertices that
    are allowed and idle (endpoints included in the idleness requirement). *)

val input_access_counts :
  Ftcsn_networks.Network.t ->
  allowed:(int -> bool) ->
  busy:(int -> bool) ->
  int array
(** For each idle input, the number of outputs it has access to ([-1] for
    busy inputs). *)

val is_majority_access :
  Ftcsn_networks.Network.t -> allowed:(int -> bool) -> busy:(int -> bool) -> bool
(** Every idle input reaches strictly more than half of the outputs. *)

val grid_last_column_access :
  Directed_grid.standalone -> faulty:(int -> bool) -> source_row:int -> int
(** Lemma 3's quantity: from row [source_row] of column 0, the number of
    last-column vertices reachable through non-faulty grid vertices. *)

val middle_stage : ?edge_ok:(int -> bool) -> Ftcsn_networks.Network.t -> int array
(** The vertices of the central stage (longest-path staging from the
    inputs) — the wide waist over which §6's majority-access argument
    runs: an idle input reaching a strict majority of the waist and an
    idle output reaching (backwards) a strict majority must share a waist
    vertex, which yields the connecting path. *)

val sampled_busy_majority :
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  ?load:float ->
  allowed:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  ?rev:Ftcsn_graph.Digraph.t ->
  Ftcsn_networks.Network.t ->
  bool
(** Lemma 6's property is universally quantified over established path
    sets; this probe samples them: per trial, greedily route a random
    partial permutation covering [load] (default 0.5) of the terminals
    through allowed vertices, then require every idle input to keep
    access to a strict majority of the {!middle_stage} waist and every
    idle output to keep backward access to a strict majority — the §6
    certificate for nonblocking containment.  [false] is a definite
    counterexample configuration; [true] is statistical evidence.
    [edge_ok] masks failed switches without rebuilding the graph, and
    [rev] supplies a precomputed {!Ftcsn_graph.Digraph.reverse} of the
    network graph (edge ids preserved, so the same mask applies). *)
