(** Rare-event estimation of the paper's failure probability δ(ε).

    This is the glue between the generic estimators of
    {!Ftcsn_reliability.Splitting} and the paper's failure event: it
    exposes the survival pipeline's verdict chain (shorted terminals →
    isolated inputs → superconcentrator flow probes, the
    [Pipeline.sc_probe_only] workload) both as a plain event for tilted
    importance sampling and as a scalar importance function for
    multilevel splitting.

    {2 The importance function}

    For splitting, φ(u) maps a per-edge uniform vector to its
    {e critical ε}: under the CRN coupling the faulty edge set at rate ε
    is [{e : u_e < 2ε}] — a prefix of the edges sorted by u, nested as ε
    grows.  The {e monotone} part of the failure event (isolated inputs,
    or a flow-probe deficit; both depend on the faulty set only, because
    stripping forbids a faulty switch's endpoints whether it failed open
    or closed) therefore flips exactly once along that prefix order, and
    {!threshold} finds the flip by bisection: φ(u) = u₍ⱼ₎/2 for the
    minimal failing prefix j, so [P[φ ≤ ε] = P[monotone failure at ε]].
    Shorted-terminal failures (a {e closed} path between terminals, not
    monotone in ε) are excluded from φ; they are O(ε²) against the
    monotone event's O(ε), and {!failure_tilted} — which measures the
    {e full} event — quantifies the gap.

    Probe plans (the r, S, T draws of each superconcentrator probe) are
    fixed per trial from the trial's substream, so φ is a deterministic
    function of (plan, u) and both estimators target the same
    plan-averaged failure probability as [Pipeline.survival]. *)

type ws
(** Per-worker workspace: fault-strip state, a Menger flow arena, the
    sort order and probe-plan buffers.  Single-domain state. *)

val create_ws : ?probes:int -> Ftcsn_networks.Network.t -> ws
(** [probes] defaults to 3, matching [Pipeline.sc_probe_only]. *)

val size : ws -> int
(** Edge (switch) count m — the length of uniform vectors and fault
    patterns this workspace consumes. *)

val fails : ws -> Ftcsn_prng.Rng.t -> Ftcsn_reliability.Fault.pattern -> bool
(** The full failure event on a sampled pattern: terminals shorted, an
    input isolated, or a superconcentrator probe deficit ([probes]
    probes with r, S, T drawn from the given stream, like
    [Pipeline.trial_ws]).  The event for {!Ftcsn_reliability.Splitting.tilted}. *)

val prepare : ws -> Ftcsn_prng.Rng.t -> unit
(** Draw and store this trial's probe plan; {!threshold} evaluates
    against it until the next [prepare]. *)

val monotone_fails : ws -> Ftcsn_reliability.Fault.pattern -> bool
(** The monotone sub-event on an explicit pattern under the stored probe
    plan: strip, then isolated-input or flow-probe deficit (shorted
    terminals ignored — they are the non-monotone part).  Depends on the
    pattern only through its faulty edge set.  Requires a preceding
    {!prepare}; the comparison oracle for the exactness tests. *)

val threshold : ws -> float array -> float
(** φ(u): the critical ε of the monotone failure event under the stored
    probe plan (+∞ if even the all-faulty network passes — does not
    occur on the paper's families).  Cost: one sort of u plus O(log m)
    strip-and-probe evaluations. *)

(** {2 Drivers}

    All take the paper's symmetric rate (ε₁ = ε₂ = ε), build their
    workspaces internally, and run on {!Ftcsn_sim.Trials} — estimates
    are bit-identical at every [jobs].  Pilot phases are sequential on
    the caller's stream, so a pilot + estimate sequence is deterministic
    end to end. *)

val tune_tilt :
  ?iters:int ->
  ?trials:int ->
  ?per_edge:bool ->
  ?trace:Ftcsn_obs.Trace.sink ->
  rng:Ftcsn_prng.Rng.t ->
  eps:float ->
  Ftcsn_networks.Network.t ->
  Ftcsn_reliability.Splitting.tilt
(** Cross-entropy tilt for the full failure event at ε. *)

val failure_tilted :
  ?jobs:int ->
  ?chunk:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  eps:float ->
  tilt:Ftcsn_reliability.Splitting.tilt ->
  Ftcsn_networks.Network.t ->
  Ftcsn_reliability.Splitting.estimate
(** Tilted importance-sampling estimate of P[failure at ε] — the exact
    complement of [Pipeline.survival]'s event under sc-only probes. *)

val failure_tilted_curve :
  ?jobs:int ->
  ?chunk:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  grid:float array ->
  tilt:Ftcsn_reliability.Splitting.tilt ->
  Ftcsn_networks.Network.t ->
  Ftcsn_reliability.Splitting.estimate array
(** One estimate per grid ε, all sharing each trial's sampled pattern
    and event evaluation (only the likelihood weights differ) — the
    rare-event analogue of [Pipeline.survival_curve]. *)

val pilot_schedule :
  ?particles:int ->
  ?p0:float ->
  ?max_levels:int ->
  ?mutate:float ->
  ?trace:Ftcsn_obs.Trace.sink ->
  rng:Ftcsn_prng.Rng.t ->
  eps:float ->
  Ftcsn_networks.Network.t ->
  Ftcsn_reliability.Splitting.schedule
(** Auto-tuned level ladder down to target ε for {!failure_split}. *)

val failure_split :
  ?jobs:int ->
  ?chunk:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?mutate:float ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  schedule:Ftcsn_reliability.Splitting.schedule ->
  Ftcsn_networks.Network.t ->
  Ftcsn_reliability.Splitting.estimate
(** Multilevel-splitting estimate of the monotone failure probability
    P[φ ≤ ε] at the schedule's target ε. *)
