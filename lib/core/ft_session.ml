module Network = Ftcsn_networks.Network
module Traffic = Ftcsn_des.Traffic

type stats = {
  ticks : int;
  placed : int;
  blocked : int;
  dropped : int;
  rerouted : int;
  failed_switches : int;
  catastrophe_at : int option;
}

(* The tick loop this module used to own now lives in the continuous-time
   engine (Ftcsn_des.Traffic); this is a thin translation layer that maps
   the historical tick-based API onto it.  A per-tick hazard becomes an
   exponential failure clock with mtbf = 1/hazard (same expected failures
   per unit time), repairs stay off (mttr = infinity), and ticks become
   the time horizon. *)

let tick_of_time t = int_of_float (ceil t)

let config_of ~hazard ~arrival ~ticks =
  if hazard < 0.0 || hazard > 1.0 then
    invalid_arg "Ft_session.run: hazard must be in [0, 1]";
  Traffic.config ~load:arrival
    ~mtbf:(if hazard > 0.0 then 1.0 /. hazard else infinity)
    ~mttr:infinity
    ~stop:(Traffic.Horizon (float_of_int ticks))
    ()

let stats_of ~ticks (s : Traffic.stats) =
  let ended_at =
    match (s.Traffic.catastrophe_at, s.Traffic.degraded_at) with
    | Some t, _ | None, Some t -> max 1 (tick_of_time t)
    | None, None -> ticks
  in
  {
    ticks = ended_at;
    placed = s.Traffic.served + s.Traffic.rerouted;
    (* system-full losses are a capacity limit, not a routing failure —
       the historical tick model never attempted an arrival when full *)
    blocked = s.Traffic.blocked - s.Traffic.blocked_full;
    dropped = s.Traffic.dropped;
    rerouted = s.Traffic.rerouted;
    failed_switches = s.Traffic.failures;
    catastrophe_at = Option.map tick_of_time s.Traffic.catastrophe_at;
  }

let run ~rng ~hazard ~arrival ~ticks net =
  let config = config_of ~hazard ~arrival ~ticks in
  stats_of ~ticks (Traffic.run ~rng ~config net)

let mttd_config ~hazard ~max_ticks =
  if hazard < 0.0 || hazard > 1.0 then
    invalid_arg "Ft_session.mean_time_to_degradation: hazard must be in [0, 1]";
  Traffic.config ~load:0.0
    ~mtbf:(if hazard > 0.0 then 1.0 /. hazard else infinity)
    ~mttr:infinity
    ~stop:(Traffic.Horizon (float_of_int max_ticks))
    ~saturate:true ~stop_on_degradation:true ()

let mean_time_to_degradation ?jobs ?trace ~rng ~hazard ~trials ~max_ticks net =
  let config = mttd_config ~hazard ~max_ticks in
  let total =
    Ftcsn_sim.Trials.map_reduce ?jobs ?trace ~label:"ft_session.mttd" ~trials
      ~rng
      ~init:(fun () -> ())
      ~create_acc:(fun () -> ref 0.0)
      ~trial:(fun () acc sub ->
        let s = Traffic.run ~rng:sub ~config net in
        let t =
          match s.Traffic.degraded_at with
          | Some t -> t
          | None -> float_of_int max_ticks
        in
        acc := !acc +. t)
      ~combine:(fun global chunk -> global := !global +. !chunk)
      ()
  in
  !total /. float_of_int trials
