module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Bitset = Ftcsn_util.Bitset
module Union_find = Ftcsn_util.Union_find
module Rng = Ftcsn_prng.Rng

type stats = {
  ticks : int;
  placed : int;
  blocked : int;
  dropped : int;
  rerouted : int;
  failed_switches : int;
  catastrophe_at : int option;
}

type sim = {
  net : Network.t;
  rng : Rng.t;
  pattern : Fault.state array;
  faulty : Bitset.t;
  busy : Bitset.t;
  shorts : Union_find.t;
  terminal : bool array;
  mutable calls : (int * int * int list * int list) list;
      (** (input idx, output idx, vertex path, edge ids of the path) *)
  mutable placed : int;
  mutable blocked : int;
  mutable dropped : int;
  mutable rerouted : int;
  mutable failures : int;
}

let make_sim ~rng net =
  let g = net.Network.graph in
  let terminal = Array.make (Digraph.vertex_count g) false in
  List.iter (fun v -> terminal.(v) <- true) (Network.terminals net);
  {
    net;
    rng;
    pattern = Array.make (Digraph.edge_count g) Fault.Normal;
    faulty = Bitset.create (Digraph.vertex_count g);
    busy = Bitset.create (Digraph.vertex_count g);
    shorts = Union_find.create (Digraph.vertex_count g);
    terminal;
    calls = [];
    placed = 0;
    blocked = 0;
    dropped = 0;
    rerouted = 0;
    failures = 0;
  }

(* BFS over still-normal switches through idle, non-faulty internal
   vertices; returns the vertex path and the edge ids it uses. *)
let find_path sim ~src ~dst =
  let g = sim.net.Network.graph in
  let n = Digraph.vertex_count g in
  (* terminals stay routable even when incident switches failed (their
     failed switches are unusable edge-wise anyway); internal vertices are
     stripped once faulty, mirroring Fault_strip *)
  let ok v =
    (not (Bitset.mem sim.busy v))
    &&
    if v = dst then true
    else (not sim.terminal.(v)) && not (Bitset.mem sim.faulty v)
  in
  if Bitset.mem sim.busy src || Bitset.mem sim.busy dst then None
  else begin
    let parent_v = Array.make n (-1) in
    let parent_e = Array.make n (-1) in
    let seen = Array.make n false in
    seen.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Digraph.iter_out g u (fun ~dst:w ~eid ->
          if
            (not !found)
            && (not seen.(w))
            && Fault.state_equal sim.pattern.(eid) Fault.Normal
            && ok w
          then begin
            seen.(w) <- true;
            parent_v.(w) <- u;
            parent_e.(w) <- eid;
            if w = dst then found := true else Queue.add w queue
          end)
    done;
    if not !found then None
    else begin
      let rec walk v vs es =
        if v = src then (v :: vs, es)
        else walk parent_v.(v) (v :: vs) (parent_e.(v) :: es)
      in
      Some (walk dst [] [])
    end
  end

let place_call sim ~input ~output =
  let src = sim.net.Network.inputs.(input)
  and dst = sim.net.Network.outputs.(output) in
  match find_path sim ~src ~dst with
  | None -> false
  | Some (path, edges) ->
      List.iter (Bitset.add sim.busy) path;
      sim.calls <- (input, output, path, edges) :: sim.calls;
      sim.placed <- sim.placed + 1;
      true

let release sim (input, output) =
  match
    List.find_opt (fun (i, o, _, _) -> i = input && o = output) sim.calls
  with
  | None -> ()
  | Some (_, _, path, _) ->
      List.iter (Bitset.remove sim.busy) path;
      sim.calls <-
        List.filter (fun (i, o, _, _) -> (i, o) <> (input, output)) sim.calls

(* Age the hardware one tick: each still-normal switch fails with the
   given hazard, evenly split between open and closed.  Returns the newly
   failed edge ids. *)
let age sim ~hazard =
  let g = sim.net.Network.graph in
  let fresh = ref [] in
  Array.iteri
    (fun e s ->
      if Fault.state_equal s Fault.Normal && Rng.bernoulli sim.rng hazard then begin
        let state =
          if Rng.bool sim.rng then Fault.Open_failure else Fault.Closed_failure
        in
        sim.pattern.(e) <- state;
        sim.failures <- sim.failures + 1;
        let src, dst = Digraph.edge_endpoints g e in
        Bitset.add sim.faulty src;
        Bitset.add sim.faulty dst;
        if Fault.state_equal state Fault.Closed_failure then
          Union_find.union sim.shorts src dst;
        fresh := e :: !fresh
      end)
    sim.pattern;
  !fresh

let terminals_shorted sim =
  let seen = Hashtbl.create 16 in
  List.exists
    (fun v ->
      let c = Union_find.find sim.shorts v in
      if Hashtbl.mem seen c then true
      else begin
        Hashtbl.add seen c ();
        false
      end)
    (Network.terminals sim.net)

(* drop calls whose path lost a switch; attempt immediate reroute *)
let handle_failures sim fresh =
  if fresh <> [] then begin
    let failed_set = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace failed_set e ()) fresh;
    let severed, alive =
      List.partition
        (fun (_, _, _, edges) -> List.exists (Hashtbl.mem failed_set) edges)
        sim.calls
    in
    sim.calls <- alive;
    List.iter
      (fun (input, output, path, _) ->
        List.iter (Bitset.remove sim.busy) path;
        sim.dropped <- sim.dropped + 1;
        if place_call sim ~input ~output then
          sim.rerouted <- sim.rerouted + 1)
      severed
  end

let run ~rng ~hazard ~arrival ~ticks net =
  let sim = make_sim ~rng net in
  let n_in = Network.n_inputs net and n_out = Network.n_outputs net in
  let catastrophe = ref None in
  let tick = ref 0 in
  while !catastrophe = None && !tick < ticks do
    incr tick;
    let fresh = age sim ~hazard in
    if terminals_shorted sim then catastrophe := Some !tick
    else begin
      handle_failures sim fresh;
      (* traffic *)
      let live = List.length sim.calls in
      let arrive =
        live = 0 || (Rng.bernoulli sim.rng arrival && live < min n_in n_out)
      in
      if arrive then begin
        let idle_inputs =
          List.filter
            (fun i -> not (List.exists (fun (i', _, _, _) -> i' = i) sim.calls))
            (List.init n_in Fun.id)
        in
        let idle_outputs =
          List.filter
            (fun o -> not (List.exists (fun (_, o', _, _) -> o' = o) sim.calls))
            (List.init n_out Fun.id)
        in
        match (idle_inputs, idle_outputs) with
        | [], _ | _, [] -> ()
        | _ ->
            let i =
              List.nth idle_inputs (Rng.int sim.rng (List.length idle_inputs))
            in
            let o =
              List.nth idle_outputs (Rng.int sim.rng (List.length idle_outputs))
            in
            if not (place_call sim ~input:i ~output:o) then
              sim.blocked <- sim.blocked + 1
      end
      else begin
        match sim.calls with
        | [] -> ()
        | calls ->
            let i, o, _, _ = List.nth calls (Rng.int sim.rng (List.length calls)) in
            release sim (i, o)
      end
    end
  done;
  {
    ticks = !tick;
    placed = sim.placed;
    blocked = sim.blocked;
    dropped = sim.dropped;
    rerouted = sim.rerouted;
    failed_switches = sim.failures;
    catastrophe_at = !catastrophe;
  }

let time_to_degradation_trial ~rng ~hazard ~max_ticks net =
  let n_in = Network.n_inputs net and n_out = Network.n_outputs net in
  let sim = make_sim ~rng net in
  (* saturate: keep every terminal pair connected identity-style *)
  let saturated = ref true in
  for i = 0 to min n_in n_out - 1 do
    if not (place_call sim ~input:i ~output:i) then saturated := false
  done;
  assert !saturated;
  let t = ref 0 in
  let degraded = ref false in
  while (not !degraded) && !t < max_ticks do
    incr t;
    let fresh = age sim ~hazard in
    if terminals_shorted sim then degraded := true
    else begin
      let before = sim.dropped in
      handle_failures sim fresh;
      let lost = sim.dropped - before in
      (* degradation = some severed call could not be rerouted *)
      if lost > 0 && List.length sim.calls < min n_in n_out then
        degraded := true
    end
  done;
  !t

let mean_time_to_degradation ?jobs ?trace ~rng ~hazard ~trials ~max_ticks net =
  let horizon =
    Ftcsn_sim.Trials.map_reduce ?jobs ?trace ~label:"ft_session.mttd"
      ~trials ~rng
      ~init:(fun () -> ())
      ~create_acc:(fun () -> ref 0.0)
      ~trial:(fun () acc sub ->
        acc :=
          !acc
          +. float_of_int (time_to_degradation_trial ~rng:sub ~hazard ~max_ticks net))
      ~combine:(fun global chunk -> global := !global +. !chunk)
      ()
  in
  !horizon /. float_of_int trials
