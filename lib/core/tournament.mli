(** The reliability-per-edge tournament: every registered topology
    family raced through the same fault-survival sweep and the same
    call-traffic workload, scored on fault tolerance per switch.

    For each family in {!Ftcsn_networks.Topology} (the [ft] family is
    installed first), the tournament builds the network at a common
    requested n, then measures

    - the coupled survival curve {!Pipeline.survival_curve} over an ε
      grid with the class-fair {!Pipeline.sc_probe_only} probes, and
    - steady-state blocking under {!Ftcsn_des.Traffic} with failure
      and repair clocks running,

    and reports edges per terminal (size / n) next to both.  An entry
    is on the Pareto front when no other entry has at most its edge
    cost {e and} at least its survival probability at the harshest
    grid ε (one strictly better).

    Seed discipline matches [ftnet] (offsets 0 / 4 / 7 for network /
    survival / traffic), so a tournament row is reproducible with
    [ftnet curve --net F] and [ftnet traffic --net F] at the same
    seed, n and trial counts. *)

type entry = {
  gen : Ftcsn_networks.Topology.gen;
  spec : string;  (** canonical spec the row was built from *)
  net_name : string;
  n : int;  (** effective terminals *)
  n_requested : int;
  size : int;
  depth : int;
  edges_per_terminal : float;
  survival : Ftcsn_reliability.Monte_carlo.estimate array;
      (** one per ε grid point, CRN-coupled *)
  blocking_mean : float;
  blocking_ci_low : float;
  blocking_ci_high : float;
  catastrophes : int;  (** traffic replications ending in Lemma 7 *)
  pareto : bool;
}

type outcome = {
  eps : float array;
  entries : entry list;  (** sorted by edges_per_terminal *)
  skipped : (string * string) list;  (** (family, reason) build refusals *)
}

val run :
  ?jobs:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?note:(string -> unit) ->
  ?load:float ->
  ?mtbf:float ->
  ?mttr:float ->
  trials:int ->
  eps:float array ->
  traffic_trials:int ->
  calls:int ->
  warmup:int ->
  n:int ->
  seed:int ->
  unit ->
  outcome
(** [note] is called with each family name as its sweep starts.
    [load] is the offered traffic in Erlangs (default: effective
    n / 4, scaling the workload with the network); [mtbf] / [mttr]
    are the per-switch failure and repair means of the traffic phase
    (defaults 500 and 10). *)

val to_table : outcome -> Ftcsn_util.Table.t
(** Families as rows: n, size, depth, edges/terminal, survival at the
    mildest and harshest ε, blocking, and a [*] Pareto-front marker. *)

val to_json : outcome -> Ftcsn_obs.Json.t
