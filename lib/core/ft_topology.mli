(** Registers the paper's fault-tolerant network 𝒩 in the
    {!Ftcsn_networks.Topology} registry, as family ["ft"] (alias
    ["paper"]).

    The registration lives here rather than in [lib/networks] because
    the dependency points the other way: the core library builds 𝒩
    {e from} the networks library.  Call {!install} once at program
    start (the CLI, the bench harness and the tournament all do); the
    call is idempotent, and making it explicit keeps the registration
    robust against the native linker dropping modules whose only
    effect is a side effect at initialisation. *)

val install : unit -> unit
(** Register the ["ft"] family if it is not yet registered.

    Spec parameters: [gamma] (oversizing levels), [degree] (expander
    degree) and [grid-stages] override the corresponding
    {!Ft_params.scaled} defaults; [n] rounds up to a power of two
    (u = ⌈log₂ n⌉, matching the historical [ftnet --family ft]
    behaviour). *)
