module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Monte_carlo = Ftcsn_reliability.Monte_carlo
module Rng = Ftcsn_prng.Rng
module Greedy = Ftcsn_routing.Greedy
module Flow_route = Ftcsn_routing.Flow_route

type verdict =
  | Survived
  | Shorted of (int * int) list
  | Isolated of int list
  | Unroutable of int

type probe = {
  greedy_permutations : int;
  exact_permutations : int;
  exact_budget : int;
  sc_probes : int;
  majority_probes : int;
}

let default_probe =
  {
    greedy_permutations = 1;
    exact_permutations = 0;
    exact_budget = 200_000;
    sc_probes = 2;
    majority_probes = 0;
  }

let sc_probe_only =
  {
    greedy_permutations = 0;
    exact_permutations = 0;
    exact_budget = 0;
    sc_probes = 3;
    majority_probes = 0;
  }

let rearrangeable_probe =
  {
    greedy_permutations = 0;
    exact_permutations = 1;
    exact_budget = 400_000;
    sc_probes = 2;
    majority_probes = 0;
  }

let lemma6_probe =
  {
    greedy_permutations = 0;
    exact_permutations = 0;
    exact_budget = 0;
    sc_probes = 0;
    majority_probes = 2;
  }

let route_probe ~rng ~probe ~allowed net =
  let n = min (Network.n_inputs net) (Network.n_outputs net) in
  let failures = ref 0 in
  for _ = 1 to probe.greedy_permutations do
    let pi = Rng.permutation rng n in
    let router = Greedy.create ~allowed net in
    let success = ref 0 in
    let _paths = Greedy.route_permutation router pi ~success in
    failures := !failures + (n - !success)
  done;
  for _ = 1 to probe.exact_permutations do
    let pi = Rng.permutation rng n in
    let requests =
      Array.to_list
        (Array.mapi
           (fun i o -> (net.Network.inputs.(i), net.Network.outputs.(o)))
           pi)
    in
    match
      Ftcsn_routing.Backtrack.route_all ~budget:probe.exact_budget ~allowed net
        requests
    with
    | Ftcsn_routing.Backtrack.Routed _ -> ()
    | Ftcsn_routing.Backtrack.Unroutable
    | Ftcsn_routing.Backtrack.Budget_exceeded ->
        incr failures
  done;
  for _ = 1 to probe.sc_probes do
    let r = 1 + Rng.int rng n in
    let s = Rng.sample_without_replacement rng ~n ~k:r in
    let t = Rng.sample_without_replacement rng ~n ~k:r in
    let forbidden v = not (allowed v) in
    let achieved =
      Flow_route.max_throughput ~forbidden net ~input_indices:s ~output_indices:t
    in
    if achieved < r then failures := !failures + (r - achieved)
  done;
  if probe.majority_probes > 0 then begin
    if
      not
        (Majority_access.sampled_busy_majority ~trials:probe.majority_probes
           ~rng ~allowed net)
    then incr failures
  end;
  !failures

let trial ~rng ~eps ?(strip_radius = 0) ?(probe = default_probe) net =
  let m = Digraph.edge_count net.Network.graph in
  let pattern = Fault.sample rng ~eps_open:eps ~eps_close:eps ~m in
  let strip = Fault_strip.strip ~radius:strip_radius net pattern in
  if strip.Fault_strip.shorted_terminals <> [] then
    Shorted strip.Fault_strip.shorted_terminals
  else begin
    match Fault_strip.isolated_inputs net strip with
    | _ :: _ as isolated -> Isolated isolated
    | [] ->
        (* route on the normal-switch subgraph so that failed switches can
           never carry probe traffic, even between terminals *)
        let surviving = Fault_strip.surviving_network net strip in
        let failures =
          route_probe ~rng ~probe ~allowed:strip.Fault_strip.allowed surviving
        in
        if failures = 0 then Survived else Unroutable failures
  end

(* ---------- workspace path ----------

   [trial_ws] is [trial] with every per-trial structure hoisted into a
   workspace: the strip state, a greedy router with its BFS scratch, and
   a prebuilt Menger flow arena.  Probes run over the ORIGINAL graph with
   the strip's vertex/edge masks, never over a rebuilt survivor subgraph.
   PRNG draws are issued in exactly the order of the legacy path, and
   every probe decision is order-for-order identical (CSR adjacency
   preserves edge-id order under subgraphing, BFS distances and max-flow
   values are tie-break independent), so verdicts — and therefore
   estimates — are bit-identical.  The qcheck suite pins this. *)

type ws = {
  ws_net : Network.t;
  fs : Fault_strip.ws;
  greedy : Greedy.t;
  flow : Flow_route.ws;
  forbidden : int -> bool;
}

let create_ws net =
  let fs = Fault_strip.create_ws net in
  let allowed = Fault_strip.ws_allowed fs in
  let edge_ok = Fault_strip.ws_edge_ok fs in
  {
    ws_net = net;
    fs;
    greedy = Greedy.create ~allowed ~edge_ok net;
    flow = Flow_route.create_ws net;
    forbidden = (fun v -> not (allowed v));
  }

let ws_fault_strip ws = ws.fs

let route_probe_ws ws ~rng ~probe =
  let net = ws.ws_net in
  let allowed = Fault_strip.ws_allowed ws.fs in
  let edge_ok = Fault_strip.ws_edge_ok ws.fs in
  let n = min (Network.n_inputs net) (Network.n_outputs net) in
  let failures = ref 0 in
  for _ = 1 to probe.greedy_permutations do
    let pi = Rng.permutation rng n in
    Greedy.clear ws.greedy;
    let success = ref 0 in
    let _paths = Greedy.route_permutation ws.greedy pi ~success in
    failures := !failures + (n - !success)
  done;
  for _ = 1 to probe.exact_permutations do
    let pi = Rng.permutation rng n in
    let requests =
      Array.to_list
        (Array.mapi
           (fun i o -> (net.Network.inputs.(i), net.Network.outputs.(o)))
           pi)
    in
    match
      Ftcsn_routing.Backtrack.route_all ~budget:probe.exact_budget ~allowed
        ~edge_ok net requests
    with
    | Ftcsn_routing.Backtrack.Routed _ -> ()
    | Ftcsn_routing.Backtrack.Unroutable
    | Ftcsn_routing.Backtrack.Budget_exceeded ->
        incr failures
  done;
  for _ = 1 to probe.sc_probes do
    let r = 1 + Rng.int rng n in
    let s = Rng.sample_without_replacement rng ~n ~k:r in
    let t = Rng.sample_without_replacement rng ~n ~k:r in
    let achieved =
      Flow_route.max_throughput_ws ~forbidden:ws.forbidden ~edge_ok ws.flow
        ~input_indices:s ~output_indices:t
    in
    if achieved < r then failures := !failures + (r - achieved)
  done;
  if probe.majority_probes > 0 then begin
    if
      not
        (Majority_access.sampled_busy_majority ~trials:probe.majority_probes
           ~rng ~allowed ~edge_ok ~rev:(Fault_strip.ws_rev ws.fs) net)
    then incr failures
  end;
  !failures

let trial_ws ?(strip_radius = 0) ?(probe = default_probe) ws ~rng ~eps =
  let pattern = Fault_strip.ws_pattern ws.fs in
  Fault.sample_into rng ~eps_open:eps ~eps_close:eps pattern;
  Fault_strip.strip_into ~radius:strip_radius ws.fs pattern;
  match Fault_strip.ws_shorted_terminals ws.fs with
  | _ :: _ as shorted -> Shorted shorted
  | [] -> (
      match Fault_strip.ws_isolated_inputs ws.fs with
      | _ :: _ as isolated -> Isolated isolated
      | [] ->
          let failures = route_probe_ws ws ~rng ~probe in
          if failures = 0 then Survived else Unroutable failures)

let survival ?jobs ?target_ci ?progress ?trace ~trials ~rng ~eps ?strip_radius
    ?probe net =
  Ftcsn_sim.Trials.run_scratch ?jobs ?target_ci ?progress ?trace
    ~label:"pipeline.survival" ~trials ~rng
    ~init:(fun () -> create_ws net)
    (fun ws sub ->
      match trial_ws ?strip_radius ?probe ws ~rng:sub ~eps with
      | Survived -> true
      | Shorted _ | Isolated _ | Unroutable _ -> false)

(* ---------- CRN-coupled survival curve ----------

   One draw vector per trial, thresholded at every ε grid point
   ([Fault.classify_into]); the probe stream for each point is a fresh
   [Rng.copy] of the trial substream taken after the edge draws —
   exactly the stream state an independent [survival] run at that ε
   would hand its probes — so every point of the curve is bit-identical
   to an independent run at that ε (the test suite pins this).

   Short-circuiting: as ε₁ + ε₂ grows over one draw vector, the
   non-normal edge set {u < ε₁ + ε₂} is nested, so the faulty-vertex
   set, the stripped set, and the allowed/edge_ok masks are nested too.
   Therefore [Isolated] persists at every later (larger) ε, and Menger
   max-flow probe values are nonincreasing, so a flow-probe [Unroutable]
   persists as well.  On a nondecreasing grid those verdicts let a trial
   skip its remaining points and record them as failures — provably the
   same outcomes, a fraction of the work.  [Shorted] never
   short-circuits (the closed set {ε₁ ≤ u < ε₁ + ε₂} is not nested),
   and greedy/backtracking/majority probes are not monotone under edge
   removal, so [Unroutable] only short-circuits for flow-only probes.

   Unchanged-pattern memo: if re-thresholding at the next grid point
   flips no edge ([Fault.classify_into_changed] returns [false]) the
   whole evaluation is a pure function of inputs it already saw —
   same pattern, same strip, and the probe runs on a fresh [Rng.copy]
   of the same substream state — so the previous point's outcome is
   reused verbatim.  At small ε most trials draw no u below the moving
   thresholds, which is precisely the regime where curves need many
   grid points, so this removes most strip+probe work there without
   changing a single outcome.

   Certificate reuse (flow-only probes): every point probes from a fresh
   [Rng.copy] of the same substream state, so the probe PLAN — the
   (r, S, T) triple of each superconcentrator probe — is identical at
   every point of one trial.  A full-success Menger run yields r
   vertex-disjoint paths; as long as every vertex and edge on those
   paths is still unmasked at a later point, the same paths witness
   max-flow = r there (the arming caps it at r), so the probe's answer
   is known without running Dinic.  The check is against the CURRENT
   masks, so it needs no grid ordering and survives intervening skipped
   or shorted points.  Only a probe whose certificate was touched by the
   re-threshold cascade pays for a new flow (which refreshes its
   certificate). *)

type curve_cache = {
  mutable plan_ready : bool;
  plan_r : int array; (* per sc probe: requested throughput r *)
  plan_s : int array array; (* per sc probe: chosen input indices *)
  plan_t : int array array; (* per sc probe: chosen output indices *)
  cert_full : bool array; (* per sc probe: stored cert achieved full r *)
  used_v : int array array; (* per sc probe: vertices on the cert paths *)
  used_v_len : int array;
  used_e : int array array; (* per sc probe: edge ids on the cert paths *)
  used_e_len : int array;
}

let create_curve_cache net ~sc_probes =
  let nv = Digraph.vertex_count net.Network.graph in
  let k = max 1 sc_probes in
  {
    plan_ready = false;
    plan_r = Array.make k 0;
    plan_s = Array.make k [||];
    plan_t = Array.make k [||];
    cert_full = Array.make k false;
    (* a unit flow uses at most one out-edge per used vertex, so both
       certificate buffers fit in vertex_count slots *)
    used_v = Array.init k (fun _ -> Array.make nv 0);
    used_v_len = Array.make k 0;
    used_e = Array.init k (fun _ -> Array.make nv 0);
    used_e_len = Array.make k 0;
  }

(* Flow-only probe evaluation with the per-trial certificate cache.
   Draw-for-draw the plan equals what [route_probe_ws] would draw from
   the same [rng], and every skipped flow returns the value Dinic would
   have computed, so the failure count is bit-identical. *)
let sc_probes_cached ws cc ~rng ~sc_probes =
  let net = ws.ws_net in
  let n = min (Network.n_inputs net) (Network.n_outputs net) in
  if not cc.plan_ready then begin
    for i = 0 to sc_probes - 1 do
      cc.plan_r.(i) <- 1 + Rng.int rng n;
      cc.plan_s.(i) <-
        Rng.sample_without_replacement rng ~n ~k:cc.plan_r.(i);
      cc.plan_t.(i) <-
        Rng.sample_without_replacement rng ~n ~k:cc.plan_r.(i)
    done;
    cc.plan_ready <- true
  end;
  let allowed = Fault_strip.ws_allowed ws.fs in
  let edge_ok = Fault_strip.ws_edge_ok ws.fs in
  let failures = ref 0 in
  for i = 0 to sc_probes - 1 do
    let r = cc.plan_r.(i) in
    let cert_intact =
      cc.cert_full.(i)
      &&
      let ok = ref true in
      let uv = cc.used_v.(i) in
      for j = 0 to cc.used_v_len.(i) - 1 do
        if not (allowed uv.(j)) then ok := false
      done;
      if !ok then begin
        let ue = cc.used_e.(i) in
        for j = 0 to cc.used_e_len.(i) - 1 do
          if not (edge_ok ue.(j)) then ok := false
        done
      end;
      !ok
    in
    if not cert_intact then begin
      let achieved, nv, ne =
        Flow_route.max_throughput_cert_ws ~forbidden:ws.forbidden ~edge_ok
          ws.flow ~input_indices:cc.plan_s.(i) ~output_indices:cc.plan_t.(i)
          ~used_vertices:cc.used_v.(i) ~used_edges:cc.used_e.(i)
      in
      cc.used_v_len.(i) <- nv;
      cc.used_e_len.(i) <- ne;
      cc.cert_full.(i) <- achieved = r;
      if achieved < r then failures := !failures + (r - achieved)
    end
  done;
  !failures

let survival_curve ?jobs ?progress ?trace ~trials ~rng ~eps
    ?(strip_radius = 0) ?(probe = default_probe) net =
  let points = Array.length eps in
  let sorted =
    let ok = ref true in
    for k = 1 to points - 1 do
      if eps.(k) < eps.(k - 1) then ok := false
    done;
    !ok
  in
  let flow_only =
    probe.greedy_permutations = 0
    && probe.exact_permutations = 0
    && probe.majority_probes = 0
  in
  Ftcsn_sim.Trials.sweep ?jobs ?progress ?trace
    ~label:"pipeline.survival_curve" ~trials ~rng ~points
    ~init:(fun () ->
      (create_ws net, create_curve_cache net ~sc_probes:probe.sc_probes))
    (fun (ws, cc) sub outcomes ->
      let sc = Fault_strip.ws_scratch ws.fs in
      let uniforms = Ftcsn_reliability.Scratch.uniforms sc in
      let pattern = Fault_strip.ws_pattern ws.fs in
      Fault.sample_uniforms_into sub uniforms;
      cc.plan_ready <- false;
      Array.fill cc.cert_full 0 (Array.length cc.cert_full) false;
      let dead = ref false in
      (* [fresh]: the pattern buffer still holds the previous trial's
         residue, so the first live point must evaluate even if the
         classification happens to leave it unchanged.  [prev_ok] is the
         outcome of the last evaluated point, reused while the pattern
         stays identical. *)
      let fresh = ref true in
      let prev_ok = ref false in
      for k = 0 to points - 1 do
        if not !dead then begin
          let e = eps.(k) in
          let changed =
            Fault.classify_into_changed ~uniforms ~eps_open:e ~eps_close:e
              pattern
          in
          if changed || !fresh then begin
            fresh := false;
            prev_ok := false;
            Fault_strip.strip_into ~radius:strip_radius ws.fs pattern;
            (match Fault_strip.ws_shorted_terminals ws.fs with
            | _ :: _ -> ()
            | [] -> (
                match Fault_strip.ws_isolated_inputs ws.fs with
                | _ :: _ -> if sorted then dead := true
                | [] ->
                    let failures =
                      if flow_only then
                        sc_probes_cached ws cc ~rng:(Rng.copy sub)
                          ~sc_probes:probe.sc_probes
                      else route_probe_ws ws ~rng:(Rng.copy sub) ~probe
                    in
                    if failures = 0 then prev_ok := true
                    else if sorted && flow_only then dead := true))
          end;
          if !prev_ok then Bytes.set outcomes k '\001'
        end
      done)

let verdict_label = function
  | Survived -> "survived"
  | Shorted _ -> "shorted"
  | Isolated _ -> "isolated"
  | Unroutable k -> Printf.sprintf "unroutable(%d)" k
