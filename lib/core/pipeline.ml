module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Monte_carlo = Ftcsn_reliability.Monte_carlo
module Rng = Ftcsn_prng.Rng
module Greedy = Ftcsn_routing.Greedy
module Flow_route = Ftcsn_routing.Flow_route

type verdict =
  | Survived
  | Shorted of (int * int) list
  | Isolated of int list
  | Unroutable of int

type probe = {
  greedy_permutations : int;
  exact_permutations : int;
  exact_budget : int;
  sc_probes : int;
  majority_probes : int;
}

let default_probe =
  {
    greedy_permutations = 1;
    exact_permutations = 0;
    exact_budget = 200_000;
    sc_probes = 2;
    majority_probes = 0;
  }

let sc_probe_only =
  {
    greedy_permutations = 0;
    exact_permutations = 0;
    exact_budget = 0;
    sc_probes = 3;
    majority_probes = 0;
  }

let rearrangeable_probe =
  {
    greedy_permutations = 0;
    exact_permutations = 1;
    exact_budget = 400_000;
    sc_probes = 2;
    majority_probes = 0;
  }

let lemma6_probe =
  {
    greedy_permutations = 0;
    exact_permutations = 0;
    exact_budget = 0;
    sc_probes = 0;
    majority_probes = 2;
  }

let route_probe ~rng ~probe ~allowed net =
  let n = min (Network.n_inputs net) (Network.n_outputs net) in
  let failures = ref 0 in
  for _ = 1 to probe.greedy_permutations do
    let pi = Rng.permutation rng n in
    let router = Greedy.create ~allowed net in
    let success = ref 0 in
    let _paths = Greedy.route_permutation router pi ~success in
    failures := !failures + (n - !success)
  done;
  for _ = 1 to probe.exact_permutations do
    let pi = Rng.permutation rng n in
    let requests =
      Array.to_list
        (Array.mapi
           (fun i o -> (net.Network.inputs.(i), net.Network.outputs.(o)))
           pi)
    in
    match
      Ftcsn_routing.Backtrack.route_all ~budget:probe.exact_budget ~allowed net
        requests
    with
    | Ftcsn_routing.Backtrack.Routed _ -> ()
    | Ftcsn_routing.Backtrack.Unroutable
    | Ftcsn_routing.Backtrack.Budget_exceeded ->
        incr failures
  done;
  for _ = 1 to probe.sc_probes do
    let r = 1 + Rng.int rng n in
    let s = Rng.sample_without_replacement rng ~n ~k:r in
    let t = Rng.sample_without_replacement rng ~n ~k:r in
    let forbidden v = not (allowed v) in
    let achieved =
      Flow_route.max_throughput ~forbidden net ~input_indices:s ~output_indices:t
    in
    if achieved < r then failures := !failures + (r - achieved)
  done;
  if probe.majority_probes > 0 then begin
    if
      not
        (Majority_access.sampled_busy_majority ~trials:probe.majority_probes
           ~rng ~allowed net)
    then incr failures
  end;
  !failures

let trial ~rng ~eps ?(strip_radius = 0) ?(probe = default_probe) net =
  let m = Digraph.edge_count net.Network.graph in
  let pattern = Fault.sample rng ~eps_open:eps ~eps_close:eps ~m in
  let strip = Fault_strip.strip ~radius:strip_radius net pattern in
  if strip.Fault_strip.shorted_terminals <> [] then
    Shorted strip.Fault_strip.shorted_terminals
  else begin
    match Fault_strip.isolated_inputs net strip with
    | _ :: _ as isolated -> Isolated isolated
    | [] ->
        (* route on the normal-switch subgraph so that failed switches can
           never carry probe traffic, even between terminals *)
        let surviving = Fault_strip.surviving_network net strip in
        let failures =
          route_probe ~rng ~probe ~allowed:strip.Fault_strip.allowed surviving
        in
        if failures = 0 then Survived else Unroutable failures
  end

(* ---------- workspace path ----------

   [trial_ws] is [trial] with every per-trial structure hoisted into a
   workspace: the strip state, a greedy router with its BFS scratch, and
   a prebuilt Menger flow arena.  Probes run over the ORIGINAL graph with
   the strip's vertex/edge masks, never over a rebuilt survivor subgraph.
   PRNG draws are issued in exactly the order of the legacy path, and
   every probe decision is order-for-order identical (CSR adjacency
   preserves edge-id order under subgraphing, BFS distances and max-flow
   values are tie-break independent), so verdicts — and therefore
   estimates — are bit-identical.  The qcheck suite pins this. *)

type ws = {
  ws_net : Network.t;
  fs : Fault_strip.ws;
  greedy : Greedy.t;
  flow : Flow_route.ws;
  forbidden : int -> bool;
}

let create_ws net =
  let fs = Fault_strip.create_ws net in
  let allowed = Fault_strip.ws_allowed fs in
  let edge_ok = Fault_strip.ws_edge_ok fs in
  {
    ws_net = net;
    fs;
    greedy = Greedy.create ~allowed ~edge_ok net;
    flow = Flow_route.create_ws net;
    forbidden = (fun v -> not (allowed v));
  }

let ws_fault_strip ws = ws.fs

let route_probe_ws ws ~rng ~probe =
  let net = ws.ws_net in
  let allowed = Fault_strip.ws_allowed ws.fs in
  let edge_ok = Fault_strip.ws_edge_ok ws.fs in
  let n = min (Network.n_inputs net) (Network.n_outputs net) in
  let failures = ref 0 in
  for _ = 1 to probe.greedy_permutations do
    let pi = Rng.permutation rng n in
    Greedy.clear ws.greedy;
    let success = ref 0 in
    let _paths = Greedy.route_permutation ws.greedy pi ~success in
    failures := !failures + (n - !success)
  done;
  for _ = 1 to probe.exact_permutations do
    let pi = Rng.permutation rng n in
    let requests =
      Array.to_list
        (Array.mapi
           (fun i o -> (net.Network.inputs.(i), net.Network.outputs.(o)))
           pi)
    in
    match
      Ftcsn_routing.Backtrack.route_all ~budget:probe.exact_budget ~allowed
        ~edge_ok net requests
    with
    | Ftcsn_routing.Backtrack.Routed _ -> ()
    | Ftcsn_routing.Backtrack.Unroutable
    | Ftcsn_routing.Backtrack.Budget_exceeded ->
        incr failures
  done;
  for _ = 1 to probe.sc_probes do
    let r = 1 + Rng.int rng n in
    let s = Rng.sample_without_replacement rng ~n ~k:r in
    let t = Rng.sample_without_replacement rng ~n ~k:r in
    let achieved =
      Flow_route.max_throughput_ws ~forbidden:ws.forbidden ~edge_ok ws.flow
        ~input_indices:s ~output_indices:t
    in
    if achieved < r then failures := !failures + (r - achieved)
  done;
  if probe.majority_probes > 0 then begin
    if
      not
        (Majority_access.sampled_busy_majority ~trials:probe.majority_probes
           ~rng ~allowed ~edge_ok ~rev:(Fault_strip.ws_rev ws.fs) net)
    then incr failures
  end;
  !failures

let trial_ws ?(strip_radius = 0) ?(probe = default_probe) ws ~rng ~eps =
  let pattern = Fault_strip.ws_pattern ws.fs in
  Fault.sample_into rng ~eps_open:eps ~eps_close:eps pattern;
  Fault_strip.strip_into ~radius:strip_radius ws.fs pattern;
  match Fault_strip.ws_shorted_terminals ws.fs with
  | _ :: _ as shorted -> Shorted shorted
  | [] -> (
      match Fault_strip.ws_isolated_inputs ws.fs with
      | _ :: _ as isolated -> Isolated isolated
      | [] ->
          let failures = route_probe_ws ws ~rng ~probe in
          if failures = 0 then Survived else Unroutable failures)

let survival ?jobs ?target_ci ?progress ?trace ~trials ~rng ~eps ?strip_radius
    ?probe net =
  Ftcsn_sim.Trials.run_scratch ?jobs ?target_ci ?progress ?trace
    ~label:"pipeline.survival" ~trials ~rng
    ~init:(fun () -> create_ws net)
    (fun ws sub ->
      match trial_ws ?strip_radius ?probe ws ~rng:sub ~eps with
      | Survived -> true
      | Shorted _ | Isolated _ | Unroutable _ -> false)

let verdict_label = function
  | Survived -> "survived"
  | Shorted _ -> "shorted"
  | Isolated _ -> "isolated"
  | Unroutable k -> Printf.sprintf "unroutable(%d)" k
