(** Dinic's maximum-flow algorithm on integer capacities.

    The workhorse behind every Menger certificate in this repository:
    superconcentrator checks, majority-access counting, and batch routing
    all reduce to unit-capacity flows, for which Dinic runs in
    O(E sqrt(V)). *)

type t

val create : n:int -> t
(** Flow network on vertices [0, n). *)

val vertex_count : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> int
(** Add a directed capacitated arc; returns an arc handle usable with
    {!flow_on}.  The reverse residual arc is managed internally. *)

val set_cap : t -> int -> int -> unit
(** [set_cap t a cap] resets the forward capacity of arc handle [a] to
    [cap] and zeroes its residual twin — the arena-reuse hook: reset every
    arc of a prebuilt network, then run {!max_flow} again. *)

val max_flow : t -> source:int -> sink:int -> int
(** Value of a maximum [source]→[sink] flow.  Capacities are consumed; to
    reuse the instance, restore every arc with {!set_cap} first. *)

val flow_on : t -> int -> int
(** Flow routed on the given arc handle (after {!max_flow}). *)

val min_cut_source_side : t -> source:int -> Ftcsn_util.Bitset.t
(** After {!max_flow}: vertices reachable from [source] in the residual
    graph; the arcs leaving this set form a minimum cut. *)
