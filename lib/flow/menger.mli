(** Menger certificates: maximum sets of vertex-disjoint directed paths.

    The definitions of rearrangeable networks and superconcentrators
    (paper, §2) are statements about vertex-disjoint paths; by Menger's
    theorem they are decided by unit-vertex-capacity max-flow, which this
    module implements by the standard node-splitting reduction. *)

val max_vertex_disjoint :
  ?forbidden:(int -> bool) ->
  Ftcsn_graph.Digraph.t ->
  sources:int array ->
  sinks:int array ->
  int
(** Maximum number of directed paths from [sources] to [sinks] that are
    pairwise vertex-disjoint (endpoints included).  [forbidden] vertices
    cannot be used at all. *)

val vertex_disjoint_paths :
  ?forbidden:(int -> bool) ->
  Ftcsn_graph.Digraph.t ->
  sources:int array ->
  sinks:int array ->
  int list list
(** A maximum family of vertex-disjoint paths, each a vertex list from a
    source to a sink. *)

val min_vertex_cut_size :
  ?forbidden:(int -> bool) ->
  Ftcsn_graph.Digraph.t ->
  sources:int array ->
  sinks:int array ->
  int
(** Size of a minimum vertex cut (counting cut vertices; equals
    {!max_vertex_disjoint} by Menger).  Lemma 3 of the paper applies this
    duality to faulty-vertex cut sets in directed grids. *)

(** Reusable node-split flow arena for repeated disjoint-path counting on
    one graph — the allocation-free backend of Monte-Carlo
    superconcentrator probes.  The arena is built once over the full
    graph plus a fixed universe of candidate sources and sinks; each
    query re-arms arc capacities in place (masked vertices, edges and
    unselected terminals get capacity 0) and reruns Dinic.  A
    zero-capacity arc carries no flow, so the returned value equals
    {!max_vertex_disjoint} on the correspondingly pruned graph.
    Workspaces are single-domain state. *)
module Workspace : sig
  type t

  val create :
    Ftcsn_graph.Digraph.t -> sources:int array -> sinks:int array -> t
  (** Build the arena; [sources]/[sinks] fix the universe of candidate
      terminals, addressed by their positions in these arrays. *)

  val max_vertex_disjoint :
    ?forbidden:(int -> bool) ->
    ?edge_ok:(int -> bool) ->
    t ->
    source_slots:int array ->
    sink_slots:int array ->
    int
  (** Maximum vertex-disjoint path count from the sources at
      [source_slots] (positions in the creation-time [sources]) to the
      sinks at [sink_slots], avoiding [forbidden] vertices and edges with
      [edge_ok eid = false].  Allocation-free. *)

  val max_vertex_disjoint_cert :
    ?forbidden:(int -> bool) ->
    ?edge_ok:(int -> bool) ->
    t ->
    source_slots:int array ->
    sink_slots:int array ->
    used_vertices:int array ->
    used_edges:int array ->
    int * int * int
  (** Same value as {!max_vertex_disjoint}, and additionally writes the
      path certificate of the computed flow — the graph vertices and
      edge ids carrying a flow unit — into the prefixes of
      [used_vertices] / [used_edges] (each must hold at least the graph's
      vertex count; a unit flow uses at most one out-edge per used
      vertex).  Returns [(value, used_vertex_count, used_edge_count)].

      The certificate is a family of [value] vertex-disjoint paths, so a
      caller holding a full-success certificate ([value] = number of
      armed source slots) may skip a later query with the {e same} slot
      sets whenever every recorded vertex and edge is still unmasked:
      the paths remain feasible, hence the answer is again [value]. *)
end
