module Vec = Ftcsn_util.Vec
module Bitset = Ftcsn_util.Bitset

(* Arc-pair representation: arc 2k is forward, arc 2k+1 its residual twin. *)
type t = {
  n : int;
  head : int Vec.t array; (* arc indices leaving each vertex *)
  dst : int Vec.t;
  cap : int Vec.t;
  mutable level : int array;
  mutable iter : int array;
}

let create ~n =
  {
    n;
    head = Array.init n (fun _ -> Vec.create ());
    dst = Vec.create ();
    cap = Vec.create ();
    level = [||];
    iter = [||];
  }

let vertex_count t = t.n

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  let a = Vec.length t.dst in
  Vec.push t.dst dst;
  Vec.push t.cap cap;
  Vec.push t.head.(src) a;
  Vec.push t.dst src;
  Vec.push t.cap 0;
  Vec.push t.head.(dst) (a + 1);
  a

let bfs t ~source ~sink =
  Array.fill t.level 0 t.n (-1);
  t.level.(source) <- 0;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Vec.iter
      (fun a ->
        let w = Vec.get t.dst a in
        if Vec.get t.cap a > 0 && t.level.(w) = -1 then begin
          t.level.(w) <- t.level.(v) + 1;
          Queue.add w queue
        end)
      t.head.(v)
  done;
  t.level.(sink) >= 0

(* DFS for a blocking flow, one augmenting path at a time (unit capacities
   dominate our workloads so path-at-a-time is fine). *)
let rec dfs t v ~sink pushed =
  if v = sink then pushed
  else begin
    let result = ref 0 in
    let arcs = t.head.(v) in
    while !result = 0 && t.iter.(v) < Vec.length arcs do
      let a = Vec.get arcs t.iter.(v) in
      let w = Vec.get t.dst a in
      if Vec.get t.cap a > 0 && t.level.(w) = t.level.(v) + 1 then begin
        let d = dfs t w ~sink (min pushed (Vec.get t.cap a)) in
        if d > 0 then begin
          Vec.set t.cap a (Vec.get t.cap a - d);
          Vec.set t.cap (a lxor 1) (Vec.get t.cap (a lxor 1) + d);
          result := d
        end
        else t.iter.(v) <- t.iter.(v) + 1
      end
      else t.iter.(v) <- t.iter.(v) + 1
    done;
    !result
  end

let set_cap t a cap =
  if cap < 0 then invalid_arg "Maxflow.set_cap: negative capacity";
  Vec.set t.cap a cap;
  Vec.set t.cap (a lxor 1) 0

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  (* level/iter are kept across calls (arena reuse); both are fully
     re-initialised below before being read *)
  if Array.length t.level <> t.n then begin
    t.level <- Array.make t.n (-1);
    t.iter <- Array.make t.n 0
  end;
  let flow = ref 0 in
  while bfs t ~source ~sink do
    Array.fill t.iter 0 t.n 0;
    let continue = ref true in
    while !continue do
      let f = dfs t source ~sink max_int in
      if f > 0 then flow := !flow + f else continue := false
    done
  done;
  !flow

let flow_on t a = Vec.get t.cap (a lor 1)

let min_cut_source_side t ~source =
  let side = Bitset.create t.n in
  Bitset.add side source;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Vec.iter
      (fun a ->
        let w = Vec.get t.dst a in
        if Vec.get t.cap a > 0 && not (Bitset.mem side w) then begin
          Bitset.add side w;
          Queue.add w queue
        end)
      t.head.(v)
  done;
  side
