module Digraph = Ftcsn_graph.Digraph

(* Node splitting: vertex v becomes v_in = 2v and v_out = 2v + 1 with a
   unit arc between them; graph edge (u, v) becomes u_out -> v_in.  The
   super-source feeds each source's in-node, sinks drain from out-nodes,
   so endpoint disjointness is enforced too. *)
let build ?(forbidden = fun _ -> false) g ~sources ~sinks =
  let n = Digraph.vertex_count g in
  let m = Digraph.edge_count g in
  let net = Maxflow.create ~n:((2 * n) + 2) in
  let super_source = 2 * n and super_sink = (2 * n) + 1 in
  let split_arcs = Array.make n (-1) in
  let edge_arcs = Array.make m (-1) in
  for v = 0 to n - 1 do
    if not (forbidden v) then
      split_arcs.(v) <- Maxflow.add_edge net ~src:(2 * v) ~dst:((2 * v) + 1) ~cap:1
  done;
  Digraph.iter_edges g (fun ~eid ~src ~dst ->
      if (not (forbidden src)) && not (forbidden dst) then
        edge_arcs.(eid) <-
          Maxflow.add_edge net ~src:((2 * src) + 1) ~dst:(2 * dst) ~cap:1);
  Array.iter
    (fun s ->
      if not (forbidden s) then
        ignore (Maxflow.add_edge net ~src:super_source ~dst:(2 * s) ~cap:1))
    sources;
  Array.iter
    (fun t ->
      if not (forbidden t) then
        ignore (Maxflow.add_edge net ~src:((2 * t) + 1) ~dst:super_sink ~cap:1))
    sinks;
  (net, super_source, super_sink, split_arcs, edge_arcs)

let max_vertex_disjoint ?forbidden g ~sources ~sinks =
  let net, s, t, _, _ = build ?forbidden g ~sources ~sinks in
  Maxflow.max_flow net ~source:s ~sink:t

let vertex_disjoint_paths ?forbidden g ~sources ~sinks =
  let net, s, t, split_arcs, edge_arcs = build ?forbidden g ~sources ~sinks in
  let _value = Maxflow.max_flow net ~source:s ~sink:t in
  let n = Digraph.vertex_count g in
  let vertex_used v =
    split_arcs.(v) >= 0 && Maxflow.flow_on net split_arcs.(v) > 0
  in
  let edge_used e = edge_arcs.(e) >= 0 && Maxflow.flow_on net edge_arcs.(e) > 0 in
  let is_sink = Array.make n false in
  Array.iter (fun v -> is_sink.(v) <- true) sinks;
  (* Each used vertex carries exactly one unit, so it has at most one
     flow-carrying out-edge; following those edges threads paths exactly. *)
  let edge_consumed = Array.make (Digraph.edge_count g) false in
  let next v =
    Digraph.fold_out g v ~init:None ~f:(fun acc ~dst ~eid ->
        match acc with
        | Some _ -> acc
        | None ->
            if edge_used eid && not edge_consumed.(eid) then begin
              edge_consumed.(eid) <- true;
              Some dst
            end
            else None)
  in
  let paths = ref [] in
  Array.iter
    (fun src ->
      if vertex_used src then begin
        (* Follow flow-carrying edges; a unit with no outgoing flow edge
           must drain into the super-sink, i.e. the walk ended at a sink. *)
        let rec walk v acc =
          match next v with
          | Some w -> walk w (v :: acc)
          | None -> if is_sink.(v) then Some (List.rev (v :: acc)) else None
        in
        match walk src [] with
        | Some p -> paths := p :: !paths
        | None -> ()
      end)
    sources;
  List.rev !paths

let min_vertex_cut_size ?forbidden g ~sources ~sinks =
  max_vertex_disjoint ?forbidden g ~sources ~sinks

module Workspace = struct
  (* Pre-built split arena reused across queries.  Every arc of the
     node-split network is added once at creation with capacity 0;
     each query re-arms capacities ([Maxflow.set_cap] also zeroes the
     residual twins) and runs Dinic again.  A masked-out arc (capacity 0)
     can carry no flow, so the flow VALUE equals the one computed by
     [build] on the corresponding pruned graph — only the value is
     exposed, keeping the arena bit-compatible with the allocating path. *)
  type t = {
    net : Maxflow.t;
    n : int;
    super_source : int;
    super_sink : int;
    split_arcs : int array;
    edge_arcs : int array;
    source_arcs : int array;
    sink_arcs : int array;
  }

  let create g ~sources ~sinks =
    let n = Digraph.vertex_count g in
    let m = Digraph.edge_count g in
    let net = Maxflow.create ~n:((2 * n) + 2) in
    let super_source = 2 * n and super_sink = (2 * n) + 1 in
    let split_arcs =
      Array.init n (fun v ->
          Maxflow.add_edge net ~src:(2 * v) ~dst:((2 * v) + 1) ~cap:0)
    in
    let edge_arcs = Array.make m (-1) in
    Digraph.iter_edges g (fun ~eid ~src ~dst ->
        edge_arcs.(eid) <-
          Maxflow.add_edge net ~src:((2 * src) + 1) ~dst:(2 * dst) ~cap:0);
    let source_arcs =
      Array.map
        (fun s -> Maxflow.add_edge net ~src:super_source ~dst:(2 * s) ~cap:0)
        sources
    in
    let sink_arcs =
      Array.map
        (fun t -> Maxflow.add_edge net ~src:((2 * t) + 1) ~dst:super_sink ~cap:0)
        sinks
    in
    { net; n; super_source; super_sink; split_arcs; edge_arcs; source_arcs; sink_arcs }

  let arm ~forbidden ~edge_ok t ~source_slots ~sink_slots =
    for v = 0 to t.n - 1 do
      Maxflow.set_cap t.net t.split_arcs.(v) (if forbidden v then 0 else 1)
    done;
    Array.iteri
      (fun e a -> Maxflow.set_cap t.net a (if edge_ok e then 1 else 0))
      t.edge_arcs;
    Array.iter (fun a -> Maxflow.set_cap t.net a 0) t.source_arcs;
    Array.iter (fun a -> Maxflow.set_cap t.net a 0) t.sink_arcs;
    Array.iter
      (fun slot -> Maxflow.set_cap t.net t.source_arcs.(slot) 1)
      source_slots;
    Array.iter
      (fun slot -> Maxflow.set_cap t.net t.sink_arcs.(slot) 1)
      sink_slots

  let max_vertex_disjoint ?(forbidden = fun _ -> false)
      ?(edge_ok = fun _ -> true) t ~source_slots ~sink_slots =
    arm ~forbidden ~edge_ok t ~source_slots ~sink_slots;
    Maxflow.max_flow t.net ~source:t.super_source ~sink:t.super_sink

  let max_vertex_disjoint_cert ?(forbidden = fun _ -> false)
      ?(edge_ok = fun _ -> true) t ~source_slots ~sink_slots ~used_vertices
      ~used_edges =
    arm ~forbidden ~edge_ok t ~source_slots ~sink_slots;
    let value =
      Maxflow.max_flow t.net ~source:t.super_source ~sink:t.super_sink
    in
    (* Read the certificate off the unit flow: a vertex is on some path
       iff its split arc carries flow, an edge iff its arc does. *)
    let nv = ref 0 in
    for v = 0 to t.n - 1 do
      if Maxflow.flow_on t.net t.split_arcs.(v) > 0 then begin
        used_vertices.(!nv) <- v;
        incr nv
      end
    done;
    let ne = ref 0 in
    Array.iteri
      (fun e a ->
        if Maxflow.flow_on t.net a > 0 then begin
          used_edges.(!ne) <- e;
          incr ne
        end)
      t.edge_arcs;
    (value, !nv, !ne)
end
