type t = {
  parent : int array;
  rank : int array;
  csize : int array;
  mutable classes : int;
}

let create n =
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    csize = Array.make n 1;
    classes = n;
  }

let size t = Array.length t.parent

let reset t =
  let n = Array.length t.parent in
  for i = 0 to n - 1 do
    t.parent.(i) <- i;
    t.rank.(i) <- 0;
    t.csize.(i) <- 1
  done;
  t.classes <- n

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    t.classes <- t.classes - 1;
    if t.rank.(ra) < t.rank.(rb) then begin
      t.parent.(ra) <- rb;
      t.csize.(rb) <- t.csize.(rb) + t.csize.(ra)
    end
    else if t.rank.(rb) < t.rank.(ra) then begin
      t.parent.(rb) <- ra;
      t.csize.(ra) <- t.csize.(ra) + t.csize.(rb)
    end
    else begin
      t.parent.(rb) <- ra;
      t.csize.(ra) <- t.csize.(ra) + t.csize.(rb);
      t.rank.(ra) <- t.rank.(ra) + 1
    end
  end

let equiv t a b = find t a = find t b

let class_count t = t.classes

let class_size t i = t.csize.(find t i)

let representatives t = Array.init (size t) (fun i -> find t i)

let compress_labels t =
  let n = size t in
  let label = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    let r = find t i in
    if label.(r) = -1 then begin
      label.(r) <- !next;
      incr next
    end
  done;
  for i = 0 to n - 1 do
    label.(i) <- label.(find t i)
  done;
  (label, !next)

(* Generation-stamped forest: an element whose stamp is stale is a
   singleton that has simply not been touched this generation, so [reset]
   is a counter bump and [find] lazily re-initialises each element the
   first time a generation observes it. *)
module Stamped = struct
  type t = {
    parent : int array;
    rank : int array;
    stamp : int array;
    mutable gen : int;
  }

  let create n =
    (* stamps start at 0 and [gen] at 1, so every element begins stale *)
    { parent = Array.make n 0; rank = Array.make n 0;
      stamp = Array.make n 0; gen = 1 }

  let size t = Array.length t.parent

  let generation t = t.gen

  let reset t = t.gen <- t.gen + 1

  let rec find t i =
    if t.stamp.(i) <> t.gen then begin
      t.stamp.(i) <- t.gen;
      t.parent.(i) <- i;
      t.rank.(i) <- 0;
      i
    end
    else begin
      let p = t.parent.(i) in
      if p = i then i
      else begin
        let root = find t p in
        t.parent.(i) <- root;
        root
      end
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then
      if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
      else if t.rank.(rb) < t.rank.(ra) then t.parent.(rb) <- ra
      else begin
        t.parent.(rb) <- ra;
        t.rank.(ra) <- t.rank.(ra) + 1
      end

  let equiv t a b = find t a = find t b
end
