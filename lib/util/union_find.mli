(** Disjoint-set forests with union by rank and path compression.

    Closed switch failures contract edge endpoints (paper, §2); the
    contraction quotient is computed with this structure. *)

type t

val create : int -> t
(** [create n] is [n] singleton classes [0 .. n-1]. *)

val size : t -> int
(** The universe size [n]. *)

val reset : t -> unit
(** Restore [n] singleton classes in place, without allocating — the
    per-trial reuse hook of the simulation scratch workspaces. *)

val find : t -> int -> int
(** Canonical representative, with path compression. *)

val union : t -> int -> int -> unit

val equiv : t -> int -> int -> bool

val class_count : t -> int
(** Number of distinct classes. *)

val class_size : t -> int -> int
(** Number of elements in the class of the argument. *)

val representatives : t -> int array
(** For each element, its canonical representative (a fresh array). *)

val compress_labels : t -> int array * int
(** [compress_labels t] is [(label, k)] where [label.(i)] is a dense id in
    [0, k) shared exactly by equivalent elements. *)

(** Generation-stamped forest with O(1) reset.

    Same union-by-rank/path-compression semantics as the plain structure,
    but {!Stamped.reset} bumps a generation counter instead of rewriting
    the arrays: an element with a stale stamp is treated as a fresh
    singleton and lazily re-initialised by {!Stamped.find}.  This is what
    lets a million-vertex workspace be "cleared" between uses for free —
    the epoch-rebuild trick behind {!Ftcsn_reliability.Dyn_conn} and the
    scratch-path contraction in {!Ftcsn_reliability.Survivor}. *)
module Stamped : sig
  type t

  val create : int -> t
  (** [create n] is [n] singleton classes [0 .. n-1], in generation 1. *)

  val size : t -> int

  val generation : t -> int
  (** The current generation — pairs with external per-root payload
      arrays that stamp themselves against it (see
      {!Ftcsn_reliability.Dyn_conn}'s terminal counts). *)

  val reset : t -> unit
  (** Restore [n] singleton classes in O(1) by bumping the generation. *)

  val find : t -> int -> int

  val union : t -> int -> int -> unit

  val equiv : t -> int -> int -> bool
end
