type event =
  | Span_begin of { span : int; name : string }
  | Span_end of { span : int; name : string; elapsed_ns : int }
  | Run_begin of {
      run : int;
      label : string;
      cap : int;
      chunk : int;
      jobs : int;
      target_ci : float option;
      min_trials : int;
    }
  | Chunk of {
      run : int;
      lo : int;
      hi : int;
      domain : int;
      elapsed_ns : int;
      successes : int option;
    }
  | Stop_check of {
      run : int;
      trials : int;
      successes : int;
      half_width : float;
      target : float;
      stop : bool;
    }
  | Run_end of {
      run : int;
      executed : int;
      successes : int option;
      elapsed_ns : int;
    }

(* ---------- serialization ---------- *)

let opt_int = function None -> Json.Null | Some n -> Json.Int n

let opt_float = function None -> Json.Null | Some f -> Json.Float f

let event_to_json ~ts_ns ev =
  let fields =
    match ev with
    | Span_begin { span; name } ->
        [ ("ev", Json.String "span_begin"); ("span", Json.Int span);
          ("name", Json.String name) ]
    | Span_end { span; name; elapsed_ns } ->
        [ ("ev", Json.String "span_end"); ("span", Json.Int span);
          ("name", Json.String name); ("elapsed_ns", Json.Int elapsed_ns) ]
    | Run_begin { run; label; cap; chunk; jobs; target_ci; min_trials } ->
        [ ("ev", Json.String "run_begin"); ("run", Json.Int run);
          ("label", Json.String label); ("cap", Json.Int cap);
          ("chunk", Json.Int chunk); ("jobs", Json.Int jobs);
          ("target_ci", opt_float target_ci);
          ("min_trials", Json.Int min_trials) ]
    | Chunk { run; lo; hi; domain; elapsed_ns; successes } ->
        [ ("ev", Json.String "chunk"); ("run", Json.Int run);
          ("lo", Json.Int lo); ("hi", Json.Int hi);
          ("domain", Json.Int domain); ("elapsed_ns", Json.Int elapsed_ns);
          ("successes", opt_int successes) ]
    | Stop_check { run; trials; successes; half_width; target; stop } ->
        [ ("ev", Json.String "stop_check"); ("run", Json.Int run);
          ("trials", Json.Int trials); ("successes", Json.Int successes);
          ("half_width", Json.Float half_width); ("target", Json.Float target);
          ("stop", Json.Bool stop) ]
    | Run_end { run; executed; successes; elapsed_ns } ->
        [ ("ev", Json.String "run_end"); ("run", Json.Int run);
          ("executed", Json.Int executed); ("successes", opt_int successes);
          ("elapsed_ns", Json.Int elapsed_ns) ]
  in
  Json.Obj (("ts_ns", Json.Int ts_ns) :: fields)

let event_of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace event: missing or invalid %S" name)
  in
  let opt_field name conv =
    match Json.member name j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
        match conv v with
        | Some v -> Ok (Some v)
        | None -> Error (Printf.sprintf "trace event: invalid %S" name))
  in
  let* ts_ns = field "ts_ns" Json.to_int in
  let* ev = field "ev" Json.to_str in
  let* event =
    match ev with
    | "span_begin" ->
        let* span = field "span" Json.to_int in
        let* name = field "name" Json.to_str in
        Ok (Span_begin { span; name })
    | "span_end" ->
        let* span = field "span" Json.to_int in
        let* name = field "name" Json.to_str in
        let* elapsed_ns = field "elapsed_ns" Json.to_int in
        Ok (Span_end { span; name; elapsed_ns })
    | "run_begin" ->
        let* run = field "run" Json.to_int in
        let* label = field "label" Json.to_str in
        let* cap = field "cap" Json.to_int in
        let* chunk = field "chunk" Json.to_int in
        let* jobs = field "jobs" Json.to_int in
        let* target_ci = opt_field "target_ci" Json.to_float in
        let* min_trials = field "min_trials" Json.to_int in
        Ok (Run_begin { run; label; cap; chunk; jobs; target_ci; min_trials })
    | "chunk" ->
        let* run = field "run" Json.to_int in
        let* lo = field "lo" Json.to_int in
        let* hi = field "hi" Json.to_int in
        let* domain = field "domain" Json.to_int in
        let* elapsed_ns = field "elapsed_ns" Json.to_int in
        let* successes = opt_field "successes" Json.to_int in
        Ok (Chunk { run; lo; hi; domain; elapsed_ns; successes })
    | "stop_check" ->
        let* run = field "run" Json.to_int in
        let* trials = field "trials" Json.to_int in
        let* successes = field "successes" Json.to_int in
        let* half_width = field "half_width" Json.to_float in
        let* target = field "target" Json.to_float in
        let* stop = field "stop" Json.to_bool in
        Ok (Stop_check { run; trials; successes; half_width; target; stop })
    | "run_end" ->
        let* run = field "run" Json.to_int in
        let* executed = field "executed" Json.to_int in
        let* successes = opt_field "successes" Json.to_int in
        let* elapsed_ns = field "elapsed_ns" Json.to_int in
        Ok (Run_end { run; executed; successes; elapsed_ns })
    | other -> Error (Printf.sprintf "trace event: unknown kind %S" other)
  in
  Ok (ts_ns, event)

let event_to_string ~ts_ns ev = Json.to_string (event_to_json ~ts_ns ev)

let event_of_string line = Result.bind (Json.parse line) event_of_json

(* ---------- sinks ---------- *)

type sink = {
  write : int -> event -> unit; (* called with the mutex held *)
  flush : unit -> unit;
  mutex : Mutex.t;
  next_id : int Atomic.t;
}

let make write flush =
  { write; flush; mutex = Mutex.create (); next_id = Atomic.make 1 }

let to_channel oc =
  make
    (fun ts ev ->
      output_string oc (event_to_string ~ts_ns:ts ev);
      output_char oc '\n')
    (fun () -> flush oc)

let memory () =
  let events = ref [] in
  let sink = make (fun ts ev -> events := (ts, ev) :: !events) (fun () -> ()) in
  (sink, fun () -> List.rev !events)

let emit sink ev =
  Mutex.lock sink.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock sink.mutex)
    (fun () -> sink.write (Clock.now_ns ()) ev)

let fresh_id sink = Atomic.fetch_and_add sink.next_id 1

let close sink =
  Mutex.lock sink.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sink.mutex) sink.flush

let span sink name f =
  match sink with
  | None -> f ()
  | Some sink ->
      let id = fresh_id sink in
      let sw = Timer.start () in
      emit sink (Span_begin { span = id; name });
      Fun.protect
        ~finally:(fun () ->
          emit sink
            (Span_end { span = id; name; elapsed_ns = Timer.elapsed_ns sw }))
        f
