(** A named registry of counters, phase timers and gauges, serializable
    to one JSON report.

    This is the backing store of [ftnet]'s [--metrics FILE] flag: the
    CLI registers per-phase {!Timer}s and summary gauges here, library
    code increments {!Counter}s (e.g. the survivor-graph operation
    counters in the reliability layer), and the whole registry is
    dumped as a single JSON object at exit.

    Lookups are find-or-create by name under a registry mutex, so any
    domain may ask for a counter at any time; the returned counters
    are atomic.  Timers and their histograms must still be owned by
    one domain at a time (see {!Timer}).

    The {!default} registry is process-wide: library instrumentation
    that has no registry in scope (and must not change public
    signatures just to thread one) accumulates there. *)

type t

val create : unit -> t
(** A fresh, empty registry. *)

val default : t
(** The process-wide registry.  Counters here persist for the process
    lifetime; report readers should treat them as cumulative. *)

val counter : t -> string -> Counter.t
(** Find or create the counter of that name. *)

val timer : t -> string -> Timer.t
(** Find or create the phase timer of that name. *)

val set_gauge : t -> string -> float -> unit
(** Set (or overwrite) a named point-in-time value — e.g. the final
    estimate mean of a run. *)

val to_json : t -> Json.t
(** An object [{"counters": {...}, "timers": {...}, "gauges": {...}}]
    with names sorted, so reports are stable under registration
    order. *)

val write_file : t -> string -> unit
(** Write [to_json] (plus a trailing newline) to a file, truncating
    it.  Raises [Sys_error] if the path is unwritable. *)
