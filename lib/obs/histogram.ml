(* 16 singleton buckets, then 16 sub-buckets per octave up to 2^62. *)

let sub_bits = 4

let sub_count = 1 lsl sub_bits (* 16 *)

let n_buckets = 960 (* 16 + (62 - 4) * 16 + 16, rounded up *)

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { buckets = Array.make n_buckets 0; count = 0; sum = 0; min_v = 0; max_v = 0 }

let msb v =
  (* position of the highest set bit of v >= 1 *)
  let r = ref 0 and x = ref v in
  if !x lsr 32 > 0 then begin r := !r + 32; x := !x lsr 32 end;
  if !x lsr 16 > 0 then begin r := !r + 16; x := !x lsr 16 end;
  if !x lsr 8 > 0 then begin r := !r + 8; x := !x lsr 8 end;
  if !x lsr 4 > 0 then begin r := !r + 4; x := !x lsr 4 end;
  if !x lsr 2 > 0 then begin r := !r + 2; x := !x lsr 2 end;
  if !x lsr 1 > 0 then r := !r + 1;
  !r

let bucket_index v =
  let v = if v < 0 then 0 else v in
  if v < sub_count then v
  else
    let p = msb v in
    (sub_count * (p - sub_bits + 1)) + ((v lsr (p - sub_bits)) land (sub_count - 1))

let bucket_bounds i =
  if i < sub_count then (i, i)
  else
    let oct = i / sub_count and sub = i land (sub_count - 1) in
    let width = 1 lsl (oct - 1) in
    let lower = (sub_count + sub) * width in
    (lower, lower + width - 1)

let record t v =
  let v = if v < 0 then 0 else v in
  let i = bucket_index v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  if t.count = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end;
  t.count <- t.count + 1;
  t.sum <- t.sum + v

let count t = t.count

let sum t = t.sum

let min_value t = t.min_v

let max_value t = t.max_v

let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let merge ~into src =
  if src.count > 0 then begin
    Array.iteri (fun i c -> into.buckets.(i) <- into.buckets.(i) + c) src.buckets;
    if into.count = 0 then begin
      into.min_v <- src.min_v;
      into.max_v <- src.max_v
    end
    else begin
      if src.min_v < into.min_v then into.min_v <- src.min_v;
      if src.max_v > into.max_v then into.max_v <- src.max_v
    end;
    into.count <- into.count + src.count;
    into.sum <- into.sum + src.sum
  end

let quantile t q =
  if t.count = 0 then 0
  else begin
    let target =
      let x = int_of_float (ceil (q *. float_of_int t.count)) in
      if x < 1 then 1 else if x > t.count then t.count else x
    in
    let cum = ref 0 and result = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           if c > 0 then begin
             cum := !cum + c;
             if !cum >= target then begin
               result := snd (bucket_bounds i);
               raise Exit
             end
           end)
         t.buckets
     with Exit -> ());
    (* never report beyond the recorded maximum *)
    if !result > t.max_v then t.max_v else !result
  end

let iter t f =
  Array.iteri
    (fun i c ->
      if c > 0 then
        let lower, upper = bucket_bounds i in
        f ~lower ~upper ~count:c)
    t.buckets

let to_json t =
  let buckets = ref [] in
  iter t (fun ~lower ~upper:_ ~count ->
      buckets := Json.List [ Json.Int lower; Json.Int count ] :: !buckets);
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", Json.Int t.min_v);
      ("max", Json.Int t.max_v);
      ("mean", Json.Float (mean t));
      ("p50", Json.Int (quantile t 0.5));
      ("p90", Json.Int (quantile t 0.9));
      ("p99", Json.Int (quantile t 0.99));
      ("buckets", Json.List (List.rev !buckets));
    ]
