(** Named atomic counters.

    A counter is a single [Atomic.t] cell: increments are lock-free,
    linearizable, and safe to issue from any domain — including from
    inside trial-engine worker chunks — without perturbing determinism
    (a counter is write-only from the instrumented code's point of
    view; nothing downstream of the RNG ever reads one).

    Counters are usually owned by a {!Metrics} registry, which
    deduplicates them by name and serializes them into the [--metrics]
    JSON report. *)

type t

val create : ?init:int -> string -> t
(** A fresh counter; [init] defaults to 0. *)

val name : t -> string

val incr : t -> unit

val add : t -> int -> unit

val get : t -> int

val reset : t -> unit
(** Set back to 0 (not atomic with respect to a concurrent {!add}'s
    read-modify-write — the addend may survive; fine for telemetry). *)
