(** Stopwatches and accumulating phase timers.

    Two layers:

    - a {!stopwatch} is just a captured {!Clock} reading — start one,
      ask for the elapsed nanoseconds;
    - a {!t} accumulates many timed sections of the same phase
      ("build-network", "estimate", …) into a log-scaled
      {!Histogram}, giving count, total, mean, max and quantiles for
      the phase.

    An accumulator inherits {!Histogram}'s threading discipline: it
    must be owned by one domain at a time (per-worker accumulators can
    be folded together with {!Histogram.merge} on the underlying
    histograms).  Stopwatches are immutable captures and safe
    anywhere. *)

type stopwatch

val start : unit -> stopwatch
(** Capture the current {!Clock} reading. *)

val elapsed_ns : stopwatch -> int
(** Nanoseconds since [start]; non-negative. *)

type t
(** An accumulator of timed sections. *)

val create : unit -> t

val record_ns : t -> int -> unit
(** Fold one externally-measured duration into the accumulator. *)

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk and record its wall-clock duration — also on
    exceptional exit, so a failing phase still shows up in the
    report. *)

val count : t -> int
(** Number of recorded sections. *)

val total_ns : t -> int
(** Summed duration of all recorded sections. *)

val mean_ns : t -> float

val max_ns : t -> int

val histogram : t -> Histogram.t
(** The underlying histogram (shared, not a copy) — for merging
    per-worker accumulators. *)

val to_json : t -> Json.t
(** Summary object: [count], [total_ns], [mean_ns], [max_ns],
    [p50_ns], [p99_ns]. *)
