(** Log-scaled histograms for latency-like quantities.

    Values are non-negative integers (typically nanoseconds).  The
    bucketing scheme is HDR-style base-2 with 16 linear sub-buckets per
    octave:

    - values [0..15] each get an exact singleton bucket;
    - every octave [\[2{^k}, 2{^k+1})] for [k >= 4] is split into 16
      equal sub-buckets of width [2{^k-4}].

    A recorded value is therefore attributed to a bucket whose width is
    at most 1/16 of its lower bound — a guaranteed relative error of at
    most 6.25% — while the whole 62-bit range fits in 960 buckets
    (about 8 KiB), so a histogram is cheap enough to keep per worker.

    Histograms are deliberately {e not} thread-safe: the intended
    pattern (matching the trial engine's scratch discipline) is one
    histogram per worker domain, {!merge}d on the scheduling domain.
    [merge] is associative and commutative, so the merged result is
    independent of worker scheduling. *)

type t

val create : unit -> t
(** An empty histogram. *)

val record : t -> int -> unit
(** Record one observation; negative values are clamped to 0. *)

val count : t -> int
(** Number of recorded observations. *)

val sum : t -> int
(** Sum of recorded observations (exact, not bucket-quantized). *)

val min_value : t -> int
(** Smallest recorded observation; 0 if empty. *)

val max_value : t -> int
(** Largest recorded observation; 0 if empty. *)

val mean : t -> float
(** [sum / count]; 0 if empty. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds every observation of [src] into [into];
    [src] is unchanged. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0, 1]: the upper bound of the first
    bucket whose cumulative count reaches [q * count t] (so the true
    q-quantile is at most the returned value, and at least 16/17 of
    it).  0 on an empty histogram. *)

val iter : t -> (lower:int -> upper:int -> count:int -> unit) -> unit
(** Visit every non-empty bucket in increasing value order; [lower]
    and [upper] are the bucket's inclusive value range. *)

val bucket_index : int -> int
(** The bucket a value falls into — exposed so tests can pin the
    bucketing scheme. *)

val bucket_bounds : int -> int * int
(** Inclusive [(lower, upper)] range of a bucket index.
    [bucket_bounds (bucket_index v)] brackets [v]. *)

val to_json : t -> Json.t
(** Summary object: [count], [sum], [min], [max], [mean], [p50], [p90],
    [p99], and a [buckets] array of [\[lower, count\]] pairs for the
    non-empty buckets. *)
