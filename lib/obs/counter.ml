type t = { name : string; cell : int Atomic.t }

let create ?(init = 0) name = { name; cell = Atomic.make init }

let name t = t.name

let incr t = Atomic.incr t.cell

let add t n = ignore (Atomic.fetch_and_add t.cell n)

let get t = Atomic.get t.cell

let reset t = Atomic.set t.cell 0
