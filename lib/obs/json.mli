(** Minimal JSON values: construction, compact printing and parsing.

    The observability layer is zero-dependency, so it carries its own JSON
    support rather than pulling in [yojson].  The dialect is the ordinary
    JSON interchange subset: no comments, no trailing commas, object keys
    are unescaped on access.  [to_string] and [parse] round-trip every
    value this library itself produces; that property is what the
    trace-event serialization tests lean on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Fields are kept in construction order; [to_string] prints them
          in that order and duplicate keys are not checked. *)

val to_string : t -> string
(** Compact (single-line, no insignificant whitespace) rendering.

    Strings are escaped per RFC 8259 (backslash escapes for the quote
    and backslash characters, [\u00XX] escapes for control
    characters); other bytes pass through untouched, so UTF-8
    text survives.  Floats print with the shortest [%g] precision that
    parses back to the identical IEEE value (17 significant digits in
    the worst case); non-finite floats render as [null] since JSON
    cannot represent them. *)

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing content after it (other
    than whitespace) is an error.  Numbers containing ['.'], ['e'] or
    ['E'] parse as {!Float}, all others as {!Int} (falling back to
    {!Float} if the literal overflows the native [int] range).  The
    error string carries a character offset. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k]; [None] on
    missing keys and non-object values. *)

val to_int : t -> int option
(** [Int n] gives [n]; a {!Float} that is exactly integral is accepted
    too (parsing may legally return either for a whole number). *)

val to_float : t -> float option
(** [Float x] gives [x]; [Int n] gives [float_of_int n]. *)

val to_bool : t -> bool option

val to_str : t -> string option
(** The payload of a [String]; [None] otherwise. *)
