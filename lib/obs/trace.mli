(** Structured JSONL tracing for Monte-Carlo runs.

    A trace is a stream of timestamped events, one compact JSON object
    per line, written while a simulation runs: span begin/end markers
    around coarse phases, one {!constructor-Chunk} event per consumed
    work unit of the trial engine (carrying the worker domain id, the
    chunk's wall-clock cost and its RNG substream range), every
    adaptive-stopping decision with its Wilson half-width, and run
    begin/end markers tying them together.

    {2 Determinism}

    Tracing is strictly {e observational}: no event ever touches a
    PRNG stream, and the trial engine emits events only on the
    scheduling domain, at chunk granularity, after a chunk's results
    are already fixed.  Estimates are therefore bit-identical with
    tracing enabled or disabled, at every job count — a property
    pinned by the test suite.

    {2 Concurrency}

    A {!sink} is mutex-guarded, so spans may be emitted from any
    domain; events are written whole-line-at-a-time, so a JSONL
    consumer never sees a torn line.  Timestamps come from the
    monotonized {!Clock}, so within one sink they are non-decreasing
    in emission order. *)

type event =
  | Span_begin of { span : int; name : string }
      (** A named phase opened; [span] pairs it with its [Span_end]. *)
  | Span_end of { span : int; name : string; elapsed_ns : int }
  | Run_begin of {
      run : int;  (** fresh id pairing all events of one engine run *)
      label : string;  (** workload name, e.g. ["pipeline.survival"] *)
      cap : int;  (** trial cap for the run *)
      chunk : int;  (** trials per work unit *)
      jobs : int;  (** worker domains *)
      target_ci : float option;  (** adaptive-stopping half-width target *)
      min_trials : int;  (** floor before stopping is considered *)
    }
  | Chunk of {
      run : int;
      lo : int;
      hi : int;
          (** the chunk covered trials — equivalently RNG substream
              ids — [lo] inclusive to [hi] exclusive *)
      domain : int;  (** integer id of the executing domain *)
      elapsed_ns : int;  (** wall-clock cost of executing the chunk *)
      successes : int option;
          (** Bernoulli successes in the chunk; [None] for map-reduce
              and search workloads *)
    }
  | Stop_check of {
      run : int;
      trials : int;  (** trials consumed when the check ran *)
      successes : int;
      half_width : float;  (** Wilson 95% half-width at that point *)
      target : float;
      stop : bool;  (** whether the run stopped here *)
    }
  | Run_end of {
      run : int;
      executed : int;  (** trials actually consumed *)
      successes : int option;
      elapsed_ns : int;
    }

(** {2 Serialization} *)

val event_to_json : ts_ns:int -> event -> Json.t
(** The JSON object for one trace line: a [ts_ns] field plus an [ev]
    tag ([span_begin], [span_end], [run_begin], [chunk], [stop_check],
    [run_end]) and the event's own fields. *)

val event_of_json : Json.t -> (int * event, string) result
(** Inverse of {!event_to_json}: recover [(ts_ns, event)].  Total on
    everything {!event_to_json} produces (the round-trip is exact,
    including float fields); descriptive [Error] otherwise. *)

val event_to_string : ts_ns:int -> event -> string
(** One JSONL line, without the trailing newline. *)

val event_of_string : string -> (int * event, string) result

(** {2 Sinks} *)

type sink

val to_channel : out_channel -> sink
(** Events are rendered to JSONL lines on the channel.  {!close}
    flushes but does not close the channel (the opener owns it). *)

val memory : unit -> sink * (unit -> (int * event) list)
(** An in-process sink plus a getter returning everything emitted so
    far, in emission order — used by the bench harness and tests. *)

val emit : sink -> event -> unit
(** Timestamp the event with {!Clock.now_ns} and record it. *)

val fresh_id : sink -> int
(** A sink-unique positive id for spans and runs (atomic). *)

val close : sink -> unit
(** Flush buffered output.  Emitting after [close] is permitted. *)

(** {2 Convenience} *)

val span : sink option -> string -> (unit -> 'a) -> 'a
(** [span sink name f] wraps [f] in [Span_begin]/[Span_end] events
    (emitting the end marker also on exceptional exit); with [None]
    it is exactly [f ()], so call sites need no case split on whether
    tracing is active. *)
