type stopwatch = int

let start () = Clock.now_ns ()

let elapsed_ns sw = Clock.elapsed_ns ~since:sw

type t = { hist : Histogram.t }

let create () = { hist = Histogram.create () }

let record_ns t ns = Histogram.record t.hist ns

let time t f =
  let sw = start () in
  Fun.protect ~finally:(fun () -> record_ns t (elapsed_ns sw)) f

let count t = Histogram.count t.hist

let total_ns t = Histogram.sum t.hist

let mean_ns t = Histogram.mean t.hist

let max_ns t = Histogram.max_value t.hist

let histogram t = t.hist

let to_json t =
  Json.Obj
    [
      ("count", Json.Int (count t));
      ("total_ns", Json.Int (total_ns t));
      ("mean_ns", Json.Float (mean_ns t));
      ("max_ns", Json.Int (max_ns t));
      ("p50_ns", Json.Int (Histogram.quantile t.hist 0.5));
      ("p99_ns", Json.Int (Histogram.quantile t.hist 0.99));
    ]
