type t = {
  mutex : Mutex.t;
  counters : (string, Counter.t) Hashtbl.t;
  timers : (string, Timer.t) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 16;
    timers = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
  }

let default = create ()

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_or_create t table make name =
  locked t (fun () ->
      match Hashtbl.find_opt table name with
      | Some v -> v
      | None ->
          let v = make name in
          Hashtbl.add table name v;
          v)

let counter t name = find_or_create t t.counters (fun n -> Counter.create n) name

let timer t name = find_or_create t t.timers (fun _ -> Timer.create ()) name

let set_gauge t name v = locked t (fun () -> Hashtbl.replace t.gauges name v)

let sorted_bindings table value_json =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (k, v) -> (k, value_json v))

let to_json t =
  locked t (fun () ->
      Json.Obj
        [
          ( "counters",
            Json.Obj
              (sorted_bindings t.counters (fun c -> Json.Int (Counter.get c)))
          );
          ("timers", Json.Obj (sorted_bindings t.timers Timer.to_json));
          ( "gauges",
            Json.Obj (sorted_bindings t.gauges (fun g -> Json.Float g)) );
        ])

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')
