let raw_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let epoch = raw_ns ()

(* high-water mark: readings never decrease, across all domains *)
let last = Atomic.make 0

let now_ns () =
  let raw = raw_ns () - epoch in
  let rec fix () =
    let prev = Atomic.get last in
    if raw <= prev then prev
    else if Atomic.compare_and_set last prev raw then raw
    else fix ()
  in
  fix ()

let elapsed_ns ~since =
  let d = now_ns () - since in
  if d < 0 then 0 else d
