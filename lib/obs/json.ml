type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_into b s =
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* shortest %g that survives a parse round-trip *)
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    let s =
      match try_prec 12 with
      | Some s -> s
      | None -> (
          match try_prec 15 with
          | Some s -> s
          | None -> Printf.sprintf "%.17g" f)
    in
    s

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        vs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  write b v;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               match int_of_string_opt ("0x" ^ hex) with
               | Some c -> c
               | None -> fail "invalid \\u escape"
             in
             utf8_of_code b code
         | _ -> fail "invalid escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some v -> Int v
      | None -> Float (float_of_string lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ---------- accessors ---------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
      Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_str = function String s -> Some s | _ -> None
