(** Monotonized nanosecond clock for telemetry timestamps.

    The OCaml standard library exposes no [CLOCK_MONOTONIC] without C
    stubs, and this library is deliberately stub- and dependency-free, so
    the clock is built from [Unix.gettimeofday] and {e monotonized}: a
    process-wide atomic high-water mark guarantees that [now_ns] never
    decreases, even if the wall clock steps backwards (NTP adjustment)
    and even when read concurrently from several domains.

    Telemetry only ever subtracts two readings, so the absolute epoch is
    irrelevant; it is fixed at library initialisation to keep trace
    timestamps small and human-scannable.

    Resolution is that of [gettimeofday] (microseconds on every platform
    we run on), reported in nanoseconds for forward compatibility.
    Readings are cheap (one syscall, one CAS) but are {e not} meant for
    micro-benchmarking single operations — use Bechamel for that.  The
    trial engine reads the clock only at chunk granularity, never inside
    the per-trial hot path. *)

val now_ns : unit -> int
(** Nanoseconds since the library was initialised; non-decreasing across
    all domains of the process. *)

val elapsed_ns : since:int -> int
(** [elapsed_ns ~since:t0] is [now_ns () - t0], clamped to be
    non-negative. *)
