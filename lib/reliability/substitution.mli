(** Edge substitution: replace every switch of a network by a copy of a
    two-terminal 1-network.

    This is the paper's §3 transfer argument: substituting an
    (ε₂, ε₁)-1-network for each edge of an (ε₁, δ)-network yields an
    (ε₂, δ)-network whose size and depth grow by only constant factors.
    The module makes that argument executable. *)

type t = {
  graph : Ftcsn_graph.Digraph.t;
  vertex_image : int array;
      (** original vertex → corresponding vertex of the substituted graph *)
  gadget : Sp_network.built;
  original_edges : int;
}

val substitute : Ftcsn_graph.Digraph.t -> gadget:Sp_network.built -> t
(** Every original edge (u, v) is replaced by a fresh copy of [gadget],
    its input merged with [u] and its output with [v].  Edge ids of the
    result enumerate gadget copies in original-edge order: composite edge
    [k·g + j] is edge [j] of the gadget copy standing in for original
    edge [k] (g = gadget size). *)

val size_factor : Ftcsn_graph.Digraph.t -> gadget:Sp_network.built -> float
(** Resulting size / original size (= gadget size). *)

val logical_rates :
  ?jobs:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  eps_open:float ->
  eps_close:float ->
  t ->
  Ftcsn_sim.Trials.estimate * Ftcsn_sim.Trials.estimate
(** [(open_rate, short_rate)]: Monte-Carlo estimates of the probability
    that one gadget copy under physical failure rates (ε₁, ε₂) presents a
    logical open (cannot conduct) resp. logical short (terminals
    contract) — a short-and-open copy counts as short, matching
    {!logical_pattern}.  Runs on the {!Ftcsn_sim.Trials} engine with a
    reused per-worker slice buffer; compare against
    {!Sp_network.open_prob} / {!Sp_network.short_prob} to validate the §3
    transfer argument. *)

val logical_pattern : t -> Fault.pattern -> Fault.pattern
(** The §3 transfer argument, executable: collapse a fault pattern on the
    substituted graph to a {e logical} pattern on the original graph.  A
    gadget copy that shorts (its terminals contract through closed
    failures) becomes a logical closed failure; one that cannot conduct at
    all becomes a logical open failure; otherwise the logical switch is
    normal.  Substituting an (ε₂, ε₁)-gadget therefore turns an
    (ε₁, δ)-network into an (ε₂, δ)-network, and this function is how
    experiments check that claim. *)
