module Rng = Ftcsn_prng.Rng
module Trials = Ftcsn_sim.Trials
module Metrics = Ftcsn_obs.Metrics
module Counter = Ftcsn_obs.Counter
module Trace = Ftcsn_obs.Trace

type estimate = {
  mean : float;
  rel_err : float;
  ci_low : float;
  ci_high : float;
  trials : int;
  var_per_trial : float;
  variance_ratio : float;
  evals : int;
}

(* sample mean/variance of the per-trial estimator Z; the CI is the
   normal approximation (Z is not Bernoulli, so Wilson does not apply) *)
let finish ~n ~sum ~sumsq ~evals =
  let nf = float_of_int n in
  let mean = if n = 0 then 0.0 else sum /. nf in
  let var =
    if n < 2 then 0.0
    else Float.max 0.0 ((sumsq -. (nf *. mean *. mean)) /. (nf -. 1.0))
  in
  let se = if n = 0 then 0.0 else sqrt (var /. nf) in
  let rel_err = if mean > 0.0 then se /. mean else infinity in
  let mc_var = mean *. (1.0 -. mean) in
  let variance_ratio =
    if var > 0.0 then mc_var /. var else if mc_var = 0.0 then 1.0 else infinity
  in
  {
    mean;
    rel_err;
    ci_low = Float.max 0.0 (mean -. (1.96 *. se));
    ci_high = mean +. (1.96 *. se);
    trials = n;
    var_per_trial = var;
    variance_ratio;
    evals;
  }

let pp ppf e =
  Format.fprintf ppf "%.4g [%.4g, %.4g] rel_err=%.3g (%d)" e.mean e.ci_low
    e.ci_high e.rel_err e.trials

let counter name = Metrics.counter Metrics.default name

(* ---------- multilevel splitting ---------- *)

type schedule = {
  levels : float array;
  splits : int array;
  entry_rate : float;
}

let max_split = 64

let check_schedule s =
  let k = Array.length s.levels in
  if k = 0 then invalid_arg "Splitting: schedule has no levels";
  if Array.length s.splits <> k - 1 then
    invalid_arg "Splitting: schedule needs one split factor per level gap";
  Array.iteri
    (fun d l ->
      if not (l > 0.0) then invalid_arg "Splitting: levels must be positive";
      if d > 0 && not (l < s.levels.(d - 1)) then
        invalid_arg "Splitting: levels must be strictly decreasing")
    s.levels;
  Array.iter
    (fun f ->
      if f < 1 then invalid_arg "Splitting: split factors must be >= 1")
    s.splits

let check_mutate mutate =
  if not (mutate > 0.0 && mutate <= 1.0) then
    invalid_arg "Splitting: mutate fraction must be in (0, 1]"

(* One block-Metropolis move, invariant for U[0,1)^m conditioned on
   {phi <= level}: propose [dst] = [src] with each coordinate resampled
   independently with probability [mutate]; accept iff the constraint
   still holds, else keep the parent state.  Returns the resulting phi
   (the proposal's on acceptance, [src_phi] on rejection, when [dst] is
   restored to a copy of [src]).

   The move mixes two reversible kernels, chosen by a fair draw:

   - a global refresh resampling chosen coordinates on [0, 1).  Ergodic
     across failure modes, but deep in the ladder a touched critical
     coordinate must land below ~2·level to keep the constraint, so
     acceptance decays with the level and the population's phi values
     would collapse onto a few ancestral atoms (stalling the pilot's
     strictly-decreasing quantiles);
   - a local refresh resampling each chosen coordinate within its side
     of the 2·level cut (clamped to [0, 1)).  Class intervals are
     identical for parent and proposal, so this kernel is symmetric for
     any fixed cut and the same accept test keeps it exact.  Under the
     [Rare.threshold] convention (faulty iff u < 2ε) it preserves the
     faulty set at [level], so monotone importance functions accept it
     almost surely; it cannot switch failure modes, but it renews the
     fine structure (and the running minimum) below the cut at every
     move instead of waiting for a global redraw to land there. *)
let metropolis_move ~mutate ~threshold ~ws ~level ~src ~src_phi ~dst rng =
  let m = Array.length src in
  Array.blit src 0 dst 0 m;
  let local = Rng.float rng < 0.5 in
  if local then begin
    let cut = Float.min 1.0 (2.0 *. level) in
    for i = 0 to m - 1 do
      if Rng.float rng < mutate then
        dst.(i) <-
          (if src.(i) < cut then Rng.float rng *. cut
           else cut +. (Rng.float rng *. (1.0 -. cut)))
    done
  end
  else
    for i = 0 to m - 1 do
      if Rng.float rng < mutate then dst.(i) <- Rng.float rng
    done;
  let phi = threshold ws dst in
  if phi <= level then phi
  else begin
    Array.blit src 0 dst 0 m;
    src_phi
  end

let pilot ?(particles = 256) ?(p0 = 0.2) ?(max_levels = 40) ?(mutate = 0.2)
    ?(moves = 6) ?trace ~rng ~m ~target ~init ~prepare ~threshold () =
  if not (target > 0.0) then
    invalid_arg "Splitting.pilot: target must be > 0";
  if not (p0 > 0.0 && p0 < 1.0) then
    invalid_arg "Splitting.pilot: p0 must be in (0, 1)";
  if particles < 8 then invalid_arg "Splitting.pilot: need >= 8 particles";
  if moves < 1 then invalid_arg "Splitting.pilot: need >= 1 move per level";
  check_mutate mutate;
  if m < 1 then invalid_arg "Splitting.pilot: need >= 1 edge";
  let n = particles in
  let ws = init () in
  prepare ws rng;
  let evals = ref 0 in
  let phi u =
    incr evals;
    threshold ws u
  in
  let pop = ref (Array.init n (fun _ -> Array.make m 0.0)) in
  let spare = ref (Array.init n (fun _ -> Array.make m 0.0)) in
  let phis = ref (Array.make n 0.0) in
  let spare_phis = ref (Array.make n 0.0) in
  Trace.span trace "rare.pilot.seed" (fun () ->
      for i = 0 to n - 1 do
        let u = !pop.(i) in
        for j = 0 to m - 1 do
          u.(j) <- Rng.float rng
        done;
        !phis.(i) <- phi u
      done);
  let sorted = Array.make n 0.0 in
  (* p0-quantile among the phi values strictly below the current level:
     cloned particles sit exactly at the parent level, so the plain
     quantile could repeat it and the ladder would stall *)
  let quantile ~below =
    let c = ref 0 in
    for i = 0 to n - 1 do
      if !phis.(i) < below then begin
        sorted.(!c) <- !phis.(i);
        incr c
      end
    done;
    if !c = 0 then
      invalid_arg
        "Splitting.pilot: population collapsed at a level (no particle \
         strictly below it; raise particles, moves or mutate)";
    let pref = Array.sub sorted 0 !c in
    Array.sort compare pref;
    let kq =
      max 0
        (min (!c - 1) (int_of_float (ceil (p0 *. float_of_int n)) - 1))
    in
    pref.(kq)
  in
  let tmp = Array.make m 0.0 in
  let levels = ref [] and splits = ref [] in
  let entry_rate = ref 1.0 in
  let survivors = Array.make n 0 in
  let finished = ref false in
  let depth = ref 0 in
  let ceiling = ref infinity in
  while not !finished do
    if !depth >= max_levels then
      invalid_arg
        (Printf.sprintf
           "Splitting.pilot: target %g not reached after %d levels (event too \
            rare for this pilot budget; raise max_levels or particles)"
           target max_levels);
    Trace.span trace (Printf.sprintf "rare.pilot.level-%d" !depth) (fun () ->
        let l = quantile ~below:!ceiling in
        let l = if l <= target then target else l in
        ceiling := l;
        let c = ref 0 in
        for i = 0 to n - 1 do
          if !phis.(i) <= l then begin
            survivors.(!c) <- i;
            incr c
          end
        done;
        let frac = float_of_int !c /. float_of_int n in
        if !depth = 0 then entry_rate := frac
        else begin
          let s =
            if !c = 0 then max_split
            else max 1 (min max_split (int_of_float (Float.round (1.0 /. frac))))
          in
          splits := s :: !splits
        end;
        levels := l :: !levels;
        if l <= target then finished := true
        else begin
          (* rebuild the population at the new level: clone survivors
             round-robin, then decorrelate with constrained moves *)
          for i = 0 to n - 1 do
            let src = !pop.(survivors.(i mod !c)) in
            let dst = !spare.(i) in
            Array.blit src 0 dst 0 m;
            let p = ref !phis.(survivors.(i mod !c)) in
            for _ = 1 to moves do
              p :=
                metropolis_move ~mutate
                  ~threshold:(fun _ u -> phi u)
                  ~ws ~level:l ~src:dst ~src_phi:!p ~dst:tmp rng;
              Array.blit tmp 0 dst 0 m
            done;
            !spare_phis.(i) <- !p
          done;
          let t = !pop in
          pop := !spare;
          spare := t;
          let t = !phis in
          phis := !spare_phis;
          spare_phis := t
        end);
    incr depth
  done;
  Counter.add (counter "rare.pilot.threshold_evals") !evals;
  Counter.add (counter "rare.pilot.levels") (List.length !levels);
  {
    levels = Array.of_list (List.rev !levels);
    splits = Array.of_list (List.rev !splits);
    entry_rate = !entry_rate;
  }

type split_acc = {
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable acc_evals : int;
  spawned : int array;
  reached : int array;
}

type 'ws split_scratch = {
  ws : 'ws;
  bufs : float array array;  (* one uniform vector per tree depth *)
  phis : float array;
}

let run ?(jobs = 1) ?chunk ?trace ?(label = "rare.split") ?(mutate = 0.2)
    ~trials ~rng ~m ~schedule ~init ~prepare ~threshold () =
  check_schedule schedule;
  check_mutate mutate;
  if m < 1 then invalid_arg "Splitting.run: need >= 1 edge";
  let levels = schedule.levels and splits = schedule.splits in
  let k = Array.length levels in
  let denom = Array.fold_left (fun a s -> a *. float_of_int s) 1.0 splits in
  let acc =
    Trials.map_reduce ~jobs ?chunk ?trace ~label ~trials ~rng
      ~init:(fun () ->
        {
          ws = init ();
          bufs = Array.init k (fun _ -> Array.make m 0.0);
          phis = Array.make k 0.0;
        })
      ~create_acc:(fun () ->
        {
          n = 0;
          sum = 0.0;
          sumsq = 0.0;
          acc_evals = 0;
          spawned = Array.make k 0;
          reached = Array.make k 0;
        })
      ~trial:(fun scr acc sub ->
        prepare scr.ws sub;
        let u0 = scr.bufs.(0) in
        for i = 0 to m - 1 do
          u0.(i) <- Rng.float sub
        done;
        let phi0 = threshold scr.ws u0 in
        acc.acc_evals <- acc.acc_evals + 1;
        acc.spawned.(0) <- acc.spawned.(0) + 1;
        let z =
          if phi0 > levels.(0) then 0.0
          else begin
            acc.reached.(0) <- acc.reached.(0) + 1;
            scr.phis.(0) <- phi0;
            (* depth-first splitting tree: buffer d holds the particle
               at level d, children overwrite buffer d+1 one at a time *)
            let rec descend d =
              if d = k - 1 then 1
              else begin
                let total = ref 0 in
                for _ = 1 to splits.(d) do
                  acc.spawned.(d + 1) <- acc.spawned.(d + 1) + 1;
                  let phi =
                    metropolis_move ~mutate ~threshold ~ws:scr.ws
                      ~level:levels.(d) ~src:scr.bufs.(d)
                      ~src_phi:scr.phis.(d) ~dst:scr.bufs.(d + 1) sub
                  in
                  acc.acc_evals <- acc.acc_evals + 1;
                  if phi <= levels.(d + 1) then begin
                    acc.reached.(d + 1) <- acc.reached.(d + 1) + 1;
                    scr.phis.(d + 1) <- phi;
                    total := !total + descend (d + 1)
                  end
                done;
                !total
              end
            in
            float_of_int (descend 0) /. denom
          end
        in
        acc.n <- acc.n + 1;
        acc.sum <- acc.sum +. z;
        acc.sumsq <- acc.sumsq +. (z *. z))
      ~combine:(fun a b ->
        a.n <- a.n + b.n;
        a.sum <- a.sum +. b.sum;
        a.sumsq <- a.sumsq +. b.sumsq;
        a.acc_evals <- a.acc_evals + b.acc_evals;
        for d = 0 to k - 1 do
          a.spawned.(d) <- a.spawned.(d) + b.spawned.(d);
          a.reached.(d) <- a.reached.(d) + b.reached.(d)
        done)
      ()
  in
  Counter.add (counter "rare.split.threshold_evals") acc.acc_evals;
  Counter.add (counter "rare.split.trials") acc.n;
  for d = 0 to k - 1 do
    Counter.add
      (counter (Printf.sprintf "rare.split.level%02d.spawned" d))
      acc.spawned.(d);
    Counter.add
      (counter (Printf.sprintf "rare.split.level%02d.reached" d))
      acc.reached.(d)
  done;
  finish ~n:acc.n ~sum:acc.sum ~sumsq:acc.sumsq ~evals:acc.acc_evals

(* ---------- cross-entropy tilted importance sampling ---------- *)

type tilt = { t_open : float array; t_close : float array }

let uniform_tilt ~m ~eps_open ~eps_close =
  if eps_open < 0.0 || eps_close < 0.0 || eps_open +. eps_close > 1.0 then
    invalid_arg "Splitting.uniform_tilt: bad probabilities";
  { t_open = Array.make m eps_open; t_close = Array.make m eps_close }

let check_target ~eps_open ~eps_close =
  if
    eps_open < 0.0 || eps_close < 0.0
    || eps_open +. eps_close > 1.0
    || eps_open +. eps_close <= 0.0
  then
    invalid_arg
      "Splitting: target probabilities must satisfy 0 < eps_open + eps_close \
       <= 1"

let check_tilt ~m ~eps_open ~eps_close tilt =
  if Array.length tilt.t_open <> m || Array.length tilt.t_close <> m then
    invalid_arg "Splitting: tilt arrays must have one entry per edge";
  for e = 0 to m - 1 do
    let o = tilt.t_open.(e) and c = tilt.t_close.(e) in
    if o < 0.0 || c < 0.0 || o +. c >= 1.0 then
      invalid_arg "Splitting: tilt entries must satisfy t_open + t_close < 1";
    if eps_open > 0.0 && o = 0.0 then
      invalid_arg "Splitting: tilt has zero open mass at a positive target";
    if eps_close > 0.0 && c = 0.0 then
      invalid_arg "Splitting: tilt has zero closed mass at a positive target"
  done

(* n * l with the 0 * (-inf) = 0 convention (a zero-probability state
   that never occurred contributes nothing to the log-weight) *)
let mul0 n l = if n = 0 then 0.0 else float_of_int n *. l

let log0 x = if x > 0.0 then log x else neg_infinity

type curve_acc = {
  mutable cn : int;
  mutable hits : int;
  sums : float array;
  sumsqs : float array;
}

let tilted_curve ?(jobs = 1) ?chunk ?trace ?(label = "rare.tilt_curve")
    ~trials ~rng ~m ~grid ~tilt ~init ~event () =
  let np = Array.length grid in
  if np = 0 then invalid_arg "Splitting.tilted_curve: empty grid";
  Array.iter (fun (eo, ec) -> check_target ~eps_open:eo ~eps_close:ec) grid;
  let eo_max, ec_max =
    Array.fold_left
      (fun (a, b) (eo, ec) -> (Float.max a eo, Float.max b ec))
      (0.0, 0.0) grid
  in
  check_tilt ~m ~eps_open:eo_max ~eps_close:ec_max tilt;
  (* per-point target log-probabilities; the weight of a pattern against
     point k depends only on its open/closed fault counts *)
  let lo = Array.map (fun (eo, _) -> log0 eo) grid in
  let lc = Array.map (fun (_, ec) -> log0 ec) grid in
  let ln = Array.map (fun (eo, ec) -> log (1.0 -. eo -. ec)) grid in
  (* per-edge proposal log-probabilities, base = all-normal *)
  let lqo = Array.map log0 tilt.t_open in
  let lqc = Array.map log0 tilt.t_close in
  let lqn =
    Array.init m (fun e -> log (1.0 -. tilt.t_open.(e) -. tilt.t_close.(e)))
  in
  let base_q = Array.fold_left ( +. ) 0.0 lqn in
  let acc =
    Trials.map_reduce ~jobs ?chunk ?trace ~label ~trials ~rng
      ~init:(fun () -> (init (), Array.make m Fault.Normal))
      ~create_acc:(fun () ->
        {
          cn = 0;
          hits = 0;
          sums = Array.make np 0.0;
          sumsqs = Array.make np 0.0;
        })
      ~trial:(fun (ws, pattern) acc sub ->
        Fault.sample_tilted_into sub ~tilt_open:tilt.t_open
          ~tilt_close:tilt.t_close pattern;
        if event ws sub pattern then begin
          acc.hits <- acc.hits + 1;
          let n_open = ref 0 and n_close = ref 0 and log_q = ref base_q in
          for e = 0 to m - 1 do
            match pattern.(e) with
            | Fault.Normal -> ()
            | Fault.Open_failure ->
                incr n_open;
                log_q := !log_q -. lqn.(e) +. lqo.(e)
            | Fault.Closed_failure ->
                incr n_close;
                log_q := !log_q -. lqn.(e) +. lqc.(e)
          done;
          let n_normal = m - !n_open - !n_close in
          for p = 0 to np - 1 do
            let lw =
              mul0 !n_open lo.(p)
              +. mul0 !n_close lc.(p)
              +. mul0 n_normal ln.(p)
              -. !log_q
            in
            let w = exp lw in
            acc.sums.(p) <- acc.sums.(p) +. w;
            acc.sumsqs.(p) <- acc.sumsqs.(p) +. (w *. w)
          done
        end;
        acc.cn <- acc.cn + 1)
      ~combine:(fun a b ->
        a.cn <- a.cn + b.cn;
        a.hits <- a.hits + b.hits;
        for p = 0 to np - 1 do
          a.sums.(p) <- a.sums.(p) +. b.sums.(p);
          a.sumsqs.(p) <- a.sumsqs.(p) +. b.sumsqs.(p)
        done)
      ()
  in
  Counter.add (counter "rare.tilt.trials") acc.cn;
  Counter.add (counter "rare.tilt.hits") acc.hits;
  Array.init np (fun p ->
      finish ~n:acc.cn ~sum:acc.sums.(p) ~sumsq:acc.sumsqs.(p) ~evals:acc.cn)

let tilted ?jobs ?chunk ?trace ?(label = "rare.tilt") ~trials ~rng ~m
    ~eps_open ~eps_close ~tilt ~init ~event () =
  (tilted_curve ?jobs ?chunk ?trace ~label ~trials ~rng ~m
     ~grid:[| (eps_open, eps_close) |]
     ~tilt ~init ~event ()).(0)

let default_init_tilt ~m ~eps_open ~eps_close =
  (* inflate the target until a sample averages ~4 faulty switches, so
     the CE pilot sees failures immediately; keep the open:closed ratio *)
  let s = eps_open +. eps_close in
  let total = Float.min 0.2 (Float.max s (4.0 /. float_of_int m)) in
  let ro = eps_open /. s in
  uniform_tilt ~m ~eps_open:(total *. ro) ~eps_close:(total *. (1.0 -. ro))

let cross_entropy ?(iters = 4) ?(trials = 1000) ?(smoothing = 0.5)
    ?(per_edge = false) ?init_tilt ?trace ~rng ~m ~eps_open ~eps_close ~init
    ~event () =
  check_target ~eps_open ~eps_close;
  if iters < 0 then invalid_arg "Splitting.cross_entropy: iters must be >= 0";
  if trials < 1 then
    invalid_arg "Splitting.cross_entropy: trials must be >= 1";
  if not (smoothing > 0.0 && smoothing <= 1.0) then
    invalid_arg "Splitting.cross_entropy: smoothing must be in (0, 1]";
  let tilt =
    match init_tilt with
    | Some t ->
        check_tilt ~m ~eps_open ~eps_close t;
        { t_open = Array.copy t.t_open; t_close = Array.copy t.t_close }
    | None -> default_init_tilt ~m ~eps_open ~eps_close
  in
  let ws = init () in
  let pattern = Array.make m Fault.Normal in
  let bo = Array.make m 0.0 and bc = Array.make m 0.0 in
  (* floor at the target (weights on failed edges stay <= 1), cap away
     from certainty, keep some normal mass *)
  let clamp_pair o c =
    let o = Float.max eps_open (Float.min 0.45 o) in
    let c = Float.max eps_close (Float.min 0.45 c) in
    let s = o +. c in
    if s > 0.9 then (o *. 0.9 /. s, c *. 0.9 /. s) else (o, c)
  in
  for it = 0 to iters - 1 do
    Trace.span trace (Printf.sprintf "rare.ce.iter-%d" it) (fun () ->
        let a = ref 0.0 in
        Array.fill bo 0 m 0.0;
        Array.fill bc 0 m 0.0;
        (* log-weight tables against the target for the current tilt *)
        let dlo =
          Array.init m (fun e -> log0 eps_open -. log0 tilt.t_open.(e))
        in
        let dlc =
          Array.init m (fun e -> log0 eps_close -. log0 tilt.t_close.(e))
        in
        let dln =
          Array.init m (fun e ->
              log (1.0 -. eps_open -. eps_close)
              -. log (1.0 -. tilt.t_open.(e) -. tilt.t_close.(e)))
        in
        let base = Array.fold_left ( +. ) 0.0 dln in
        for _ = 1 to trials do
          Fault.sample_tilted_into rng ~tilt_open:tilt.t_open
            ~tilt_close:tilt.t_close pattern;
          if event ws rng pattern then begin
            let lw = ref base in
            for e = 0 to m - 1 do
              match pattern.(e) with
              | Fault.Normal -> ()
              | Fault.Open_failure -> lw := !lw -. dln.(e) +. dlo.(e)
              | Fault.Closed_failure -> lw := !lw -. dln.(e) +. dlc.(e)
            done;
            let w = exp !lw in
            a := !a +. w;
            for e = 0 to m - 1 do
              match pattern.(e) with
              | Fault.Normal -> ()
              | Fault.Open_failure -> bo.(e) <- bo.(e) +. w
              | Fault.Closed_failure -> bc.(e) <- bc.(e) +. w
            done
          end
        done;
        if !a = 0.0 then
          (* no failure observed: inflate and retry next iteration *)
          for e = 0 to m - 1 do
            let o, c =
              clamp_pair (2.0 *. tilt.t_open.(e)) (2.0 *. tilt.t_close.(e))
            in
            tilt.t_open.(e) <- o;
            tilt.t_close.(e) <- c
          done
        else if per_edge then
          for e = 0 to m - 1 do
            let no = bo.(e) /. !a and nc = bc.(e) /. !a in
            let o =
              ((1.0 -. smoothing) *. tilt.t_open.(e)) +. (smoothing *. no)
            in
            let c =
              ((1.0 -. smoothing) *. tilt.t_close.(e)) +. (smoothing *. nc)
            in
            let o, c = clamp_pair o c in
            tilt.t_open.(e) <- o;
            tilt.t_close.(e) <- c
          done
        else begin
          let so = Array.fold_left ( +. ) 0.0 bo
          and sc = Array.fold_left ( +. ) 0.0 bc in
          let no = so /. (!a *. float_of_int m)
          and nc = sc /. (!a *. float_of_int m) in
          for e = 0 to m - 1 do
            let o =
              ((1.0 -. smoothing) *. tilt.t_open.(e)) +. (smoothing *. no)
            in
            let c =
              ((1.0 -. smoothing) *. tilt.t_close.(e)) +. (smoothing *. nc)
            in
            let o, c = clamp_pair o c in
            tilt.t_open.(e) <- o;
            tilt.t_close.(e) <- c
          done
        end)
  done;
  Counter.add (counter "rare.ce.iterations") iters;
  tilt
