(** Moore–Shannon hammocks: two-terminal (l, w) grid fabrics.

    The paper's directed grids (§6, Fig. 4) are "based on the hammock of
    Moore and Shannon".  A hammock here is an (l, w) directed grid — l rows,
    w stages, edges from (i, j) to (i, j+1) and to (i+1 mod l, j+1) — with a
    single input feeding every stage-0 vertex and every last-stage vertex
    draining to a single output.  Unlike {!Sp_network} these are not
    series-parallel, so their reliability is measured (Monte-Carlo, or
    {!Exact} when tiny) rather than computed by recurrence; experiment E1
    compares both families. *)

type t = {
  graph : Ftcsn_graph.Digraph.t;
  input : int;
  output : int;
  rows : int;
  width : int;
}

val make : rows:int -> width:int -> t
(** @raise Invalid_argument unless [rows >= 1 && width >= 1]. *)

val open_failure_prob :
  ?jobs:int ->
  ?target_ci:float ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  eps:float ->
  t ->
  Monte_carlo.estimate
(** Monte-Carlo estimate of P[no input→output path survives] at
    ε₁ = ε₂ = ε.  [jobs]/[target_ci]/[progress]/[trace] as in
    {!Monte_carlo.estimate}. *)

val short_failure_prob :
  ?jobs:int ->
  ?target_ci:float ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  eps:float ->
  t ->
  Monte_carlo.estimate
(** Monte-Carlo estimate of P[input and output contract]. *)

val open_failure_prob_curve :
  ?jobs:int ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  eps:float array ->
  t ->
  Monte_carlo.estimate array
(** CRN-coupled curve of {!open_failure_prob} over an ε grid: one
    estimate per grid point from a single fan-out of [trials] coupled
    trials ({!Monte_carlo.estimate_curve}).  Open failure only depends
    on the open-edge set [{u < ε}], which is nested as ε grows, so on an
    ascending grid the per-trial indicator is monotone and the sweep
    short-circuits already-failed trials at later points — same results,
    less work.  Each point of the curve is bit-identical to an
    independent {!open_failure_prob} run at that ε with the same [rng]
    state and [trials]. *)

val short_failure_prob_curve :
  ?jobs:int ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  eps:float array ->
  t ->
  Monte_carlo.estimate array
(** CRN-coupled curve of {!short_failure_prob} over an ε grid.  Shorting
    reads the closed-edge set [{ε ≤ u < 2ε}], which is not nested in ε,
    so no monotone short-circuit applies — every grid point is
    evaluated on every trial. *)

val size : t -> int

val depth : t -> int
