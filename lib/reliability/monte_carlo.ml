module Digraph = Ftcsn_graph.Digraph
module Trials = Ftcsn_sim.Trials

type estimate = Trials.estimate = {
  successes : int;
  trials : int;
  mean : float;
  ci_low : float;
  ci_high : float;
}

let of_counts = Trials.of_counts

let estimate ?jobs ?target_ci ?progress ?trace ?label ~trials ~rng f =
  Trials.run ?jobs ?target_ci ?progress ?trace ?label ~trials ~rng f

let estimate_event ?jobs ?target_ci ?progress ?trace ?label ~trials ~rng
    ~graph ~eps_open ~eps_close f =
  let m = Digraph.edge_count graph in
  Trials.run_scratch ?jobs ?target_ci ?progress ?trace ?label ~trials ~rng
    ~init:(fun () -> Fault.all_normal m)
    (fun pattern sub ->
      Fault.sample_into sub ~eps_open ~eps_close pattern;
      f pattern)

let estimate_event_scratch ?jobs ?target_ci ?progress ?trace ?label ~trials
    ~rng ~graph ~eps_open ~eps_close f =
  Trials.run_scratch ?jobs ?target_ci ?progress ?trace ?label ~trials ~rng
    ~init:(fun () -> Scratch.create graph)
    (fun sc sub ->
      Fault.sample_into sub ~eps_open ~eps_close (Scratch.pattern sc);
      f sc)

let estimate_curve ?jobs ?progress ?trace ?(label = "monte_carlo.curve")
    ?(monotone_event = false) ~trials ~rng ~graph ~grid f =
  let points = Array.length grid in
  Array.iter
    (fun (eps_open, eps_close) ->
      if eps_open < 0.0 || eps_close < 0.0 || eps_open +. eps_close > 1.0 then
        invalid_arg "Monte_carlo.estimate_curve: bad grid probabilities")
    grid;
  Trials.sweep ?jobs ?progress ?trace ~label ~trials ~rng ~points
    ~init:(fun () -> Scratch.create graph)
    (fun sc sub outcomes ->
      Fault.sample_uniforms_into sub (Scratch.uniforms sc);
      let k = ref 0 in
      let hit = ref false in
      while !k < points do
        if !hit && monotone_event then Bytes.set outcomes !k '\001'
        else begin
          let eps_open, eps_close = grid.(!k) in
          Fault.classify_into ~uniforms:(Scratch.uniforms sc) ~eps_open
            ~eps_close (Scratch.pattern sc);
          if f sc then begin
            Bytes.set outcomes !k '\001';
            hit := true
          end
        end;
        incr k
      done)

let pp = Trials.pp
