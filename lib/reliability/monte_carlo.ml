module Digraph = Ftcsn_graph.Digraph
module Trials = Ftcsn_sim.Trials

type estimate = Trials.estimate = {
  successes : int;
  trials : int;
  mean : float;
  ci_low : float;
  ci_high : float;
}

let of_counts = Trials.of_counts

let estimate ?jobs ?target_ci ?progress ?trace ?label ~trials ~rng f =
  Trials.run ?jobs ?target_ci ?progress ?trace ?label ~trials ~rng f

let estimate_event ?jobs ?target_ci ?progress ?trace ?label ~trials ~rng
    ~graph ~eps_open ~eps_close f =
  let m = Digraph.edge_count graph in
  Trials.run_scratch ?jobs ?target_ci ?progress ?trace ?label ~trials ~rng
    ~init:(fun () -> Fault.all_normal m)
    (fun pattern sub ->
      Fault.sample_into sub ~eps_open ~eps_close pattern;
      f pattern)

let estimate_event_scratch ?jobs ?target_ci ?progress ?trace ?label ~trials
    ~rng ~graph ~eps_open ~eps_close f =
  Trials.run_scratch ?jobs ?target_ci ?progress ?trace ?label ~trials ~rng
    ~init:(fun () -> Scratch.create graph)
    (fun sc sub ->
      Fault.sample_into sub ~eps_open ~eps_close (Scratch.pattern sc);
      f sc)

let pp = Trials.pp
