(** Survivor-graph semantics of a fault pattern (paper, §2).

    Applying a pattern to a graph G yields the random instance: closed
    failures contract their endpoints, open failures delete their edges,
    and the question of §3 is whether the {e normal-state} edges of the
    instance still contain the desired network.  This module computes that
    instance as a quotient graph plus the vertex/edge correspondences.

    Calls to {!apply}, {!shorted_by_closure} and
    {!connected_ignoring_opens} — the inner loops of every stochastic
    reliability estimate — are counted in the process-wide
    [Ftcsn_obs.Metrics.default] registry (names [survivor.*]), which is
    what [ftnet --metrics] reports.  The counters are atomic and
    write-only, so instrumentation never perturbs results. *)

type t = {
  graph : Ftcsn_graph.Digraph.t;
      (** quotient graph containing only surviving normal edges *)
  vertex_image : int array;
      (** original vertex → quotient vertex *)
  edge_image : int array;
      (** original edge id → surviving edge id, [-1] if the edge failed or
          became a self-loop under contraction *)
  contracted_classes : int;
      (** number of quotient vertices *)
}

val apply : Ftcsn_graph.Digraph.t -> Fault.pattern -> t

val terminals_distinct : t -> int list -> bool
(** True iff no two of the given original vertices were contracted
    together — the event bounded by the paper's Lemma 7. *)

val merged_pairs : t -> int list -> (int * int) list
(** The pairs of given terminals that did contract together. *)

val shorted_by_closure : Ftcsn_graph.Digraph.t -> Fault.pattern -> a:int -> b:int -> bool
(** True iff vertices [a] and [b] are connected using closed-failure edges
    only (ignoring direction) — the two-terminal "short" event of
    Proposition 1. *)

val connected_ignoring_opens :
  Ftcsn_graph.Digraph.t -> Fault.pattern -> a:int -> b:int -> bool
(** True iff a directed path of non-open edges leads from [a] to [b] — the
    complement of the two-terminal "open" event. *)

(** {2 Workspace variants}

    Same semantics (and the same [survivor.*] counters) as the functions
    above, but all per-trial state lives in the caller's {!Scratch.t}, so
    repeated trials allocate nothing.  The workspace must have been
    created on the same graph the pattern describes. *)

val apply_into : Scratch.t -> Fault.pattern -> unit
(** Contract the pattern's closed-failure edges into the workspace's
    union-find (after a {!Ftcsn_util.Union_find.reset}).  Afterwards the
    workspace answers the contraction queries below; unlike {!apply} no
    quotient graph is materialised — routing runs over the original CSR
    with failed edges masked instead. *)

val terminals_distinct_into : Scratch.t -> int list -> bool
(** {!terminals_distinct} against the contraction classes loaded by the
    last {!apply_into}. *)

val merged_pairs_into : Scratch.t -> int list -> (int * int) list
(** {!merged_pairs} against the contraction classes loaded by the last
    {!apply_into}; the result list is the only allocation. *)

val shorted_by_closure_into :
  Scratch.t -> Fault.pattern -> a:int -> b:int -> bool
(** {!shorted_by_closure} using the workspace union-find. *)

val connected_ignoring_opens_into :
  Scratch.t -> Fault.pattern -> a:int -> b:int -> bool
(** {!connected_ignoring_opens} as a BFS over the workspace graph with
    open edges masked (no subgraph rebuild). *)
