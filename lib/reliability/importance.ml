module Digraph = Ftcsn_graph.Digraph
module Rng = Ftcsn_prng.Rng
module Trials = Ftcsn_sim.Trials

type estimate = {
  switch : int;
  open_importance : float;
  close_importance : float;
}

type counts = {
  opens : int array;
  closes : int array;
  normals : int array;
}

let importance ?jobs ?trace ~trials ~rng ~graph ~eps ~init ~event ~switches ()
    =
  let m = Digraph.edge_count graph in
  Array.iter
    (fun e ->
      if e < 0 || e >= m then invalid_arg "Importance.importance: switch id")
    switches;
  let k = Array.length switches in
  let counts =
    Trials.map_reduce ?jobs ?trace ~label:"importance.birnbaum" ~trials ~rng
      ~init:(fun () -> (init (), Fault.all_normal m))
      ~create_acc:(fun () ->
        {
          opens = Array.make k 0;
          closes = Array.make k 0;
          normals = Array.make k 0;
        })
      ~trial:(fun (ws, pattern) acc sub ->
        Fault.sample_into sub ~eps_open:eps ~eps_close:eps pattern;
        Array.iteri
          (fun idx e ->
            (* paired sampling: common random states everywhere else, the
               switch under study forced three ways *)
            let saved = pattern.(e) in
            pattern.(e) <- Fault.Normal;
            if event ws pattern then acc.normals.(idx) <- acc.normals.(idx) + 1;
            pattern.(e) <- Fault.Open_failure;
            if event ws pattern then acc.opens.(idx) <- acc.opens.(idx) + 1;
            pattern.(e) <- Fault.Closed_failure;
            if event ws pattern then acc.closes.(idx) <- acc.closes.(idx) + 1;
            pattern.(e) <- saved)
          switches)
      ~combine:(fun global chunk ->
        for idx = 0 to k - 1 do
          global.opens.(idx) <- global.opens.(idx) + chunk.opens.(idx);
          global.closes.(idx) <- global.closes.(idx) + chunk.closes.(idx);
          global.normals.(idx) <- global.normals.(idx) + chunk.normals.(idx)
        done)
      ()
  in
  let f c = float_of_int c /. float_of_int trials in
  Array.mapi
    (fun idx e ->
      {
        switch = e;
        open_importance = f counts.opens.(idx) -. f counts.normals.(idx);
        close_importance = f counts.closes.(idx) -. f counts.normals.(idx);
      })
    switches

let rank ?jobs ?trace ~trials ~rng ~graph ~eps ~init ~event ?(sample = 32) ()
    =
  let m = Digraph.edge_count graph in
  let switches = Rng.sample_without_replacement rng ~n:m ~k:(min sample m) in
  let estimates =
    importance ?jobs ?trace ~trials ~rng ~graph ~eps ~init ~event ~switches ()
  in
  Array.sort
    (fun a b ->
      compare
        (b.open_importance +. b.close_importance)
        (a.open_importance +. a.close_importance))
    estimates;
  estimates
