module Rng = Ftcsn_prng.Rng
module Bitset = Ftcsn_util.Bitset
module Digraph = Ftcsn_graph.Digraph

type state = Normal | Open_failure | Closed_failure

type pattern = state array

let state_equal a b =
  match (a, b) with
  | Normal, Normal | Open_failure, Open_failure | Closed_failure, Closed_failure
    ->
      true
  | (Normal | Open_failure | Closed_failure), _ -> false

let pp_state ppf = function
  | Normal -> Format.pp_print_string ppf "normal"
  | Open_failure -> Format.pp_print_string ppf "open"
  | Closed_failure -> Format.pp_print_string ppf "closed"

let check_probabilities ~eps_open ~eps_close =
  if eps_open < 0.0 || eps_close < 0.0 || eps_open +. eps_close > 1.0 then
    invalid_arg "Fault.sample: bad probabilities"

let sample_into rng ~eps_open ~eps_close pattern =
  check_probabilities ~eps_open ~eps_close;
  let threshold = eps_open +. eps_close in
  for e = 0 to Array.length pattern - 1 do
    let u = Rng.float rng in
    pattern.(e) <-
      (if u < eps_open then Open_failure
       else if u < threshold then Closed_failure
       else Normal)
  done

let sample_tilted_into rng ~tilt_open ~tilt_close pattern =
  let m = Array.length pattern in
  if Array.length tilt_open <> m || Array.length tilt_close <> m then
    invalid_arg "Fault.sample_tilted_into: tilt/pattern length mismatch";
  for e = 0 to m - 1 do
    let o = Array.unsafe_get tilt_open e
    and c = Array.unsafe_get tilt_close e in
    if o < 0.0 || c < 0.0 || o +. c > 1.0 then
      invalid_arg "Fault.sample_tilted_into: bad probabilities";
    let u = Rng.float rng in
    Array.unsafe_set pattern e
      (if u < o then Open_failure
       else if u < o +. c then Closed_failure
       else Normal)
  done

let sample_uniforms_into rng uniforms =
  for e = 0 to Array.length uniforms - 1 do
    uniforms.(e) <- Rng.float rng
  done

let classify_into ~uniforms ~eps_open ~eps_close pattern =
  check_probabilities ~eps_open ~eps_close;
  if Array.length uniforms <> Array.length pattern then
    invalid_arg "Fault.classify_into: uniforms/pattern length mismatch";
  let threshold = eps_open +. eps_close in
  for e = 0 to Array.length pattern - 1 do
    let u = Array.unsafe_get uniforms e in
    Array.unsafe_set pattern e
      (if u < eps_open then Open_failure
       else if u < threshold then Closed_failure
       else Normal)
  done

let classify_into_changed ~uniforms ~eps_open ~eps_close pattern =
  check_probabilities ~eps_open ~eps_close;
  if Array.length uniforms <> Array.length pattern then
    invalid_arg "Fault.classify_into_changed: uniforms/pattern length mismatch";
  let threshold = eps_open +. eps_close in
  let changed = ref false in
  for e = 0 to Array.length pattern - 1 do
    let u = Array.unsafe_get uniforms e in
    let s =
      if u < eps_open then Open_failure
      else if u < threshold then Closed_failure
      else Normal
    in
    if not (state_equal (Array.unsafe_get pattern e) s) then begin
      Array.unsafe_set pattern e s;
      changed := true
    end
  done;
  !changed

let sample rng ~eps_open ~eps_close ~m =
  let pattern = Array.make m Normal in
  sample_into rng ~eps_open ~eps_close pattern;
  pattern

let all_normal m = Array.make m Normal

let count pattern s =
  Array.fold_left (fun acc x -> if state_equal x s then acc + 1 else acc) 0 pattern

let failed_edges pattern =
  let acc = ref [] in
  for e = Array.length pattern - 1 downto 0 do
    if not (state_equal pattern.(e) Normal) then acc := e :: !acc
  done;
  !acc

let pattern_probability pattern ~eps_open ~eps_close =
  let p_normal = 1.0 -. eps_open -. eps_close in
  Array.fold_left
    (fun acc s ->
      acc
      *.
      match s with
      | Normal -> p_normal
      | Open_failure -> eps_open
      | Closed_failure -> eps_close)
    1.0 pattern

let faulty_vertices_into g pattern faulty =
  Bitset.clear faulty;
  Array.iteri
    (fun e s ->
      if not (state_equal s Normal) then begin
        let src, dst = Digraph.edge_endpoints g e in
        Bitset.add faulty src;
        Bitset.add faulty dst
      end)
    pattern

let faulty_vertices g pattern =
  let faulty = Bitset.create (Digraph.vertex_count g) in
  faulty_vertices_into g pattern faulty;
  faulty
