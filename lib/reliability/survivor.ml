module Digraph = Ftcsn_graph.Digraph
module Union_find = Ftcsn_util.Union_find
module Metrics = Ftcsn_obs.Metrics

(* telemetry: survivor-graph operations are the inner loop of every
   stochastic reliability estimate, so their call volumes are the first
   thing to look at when a sweep is slow.  Atomic, write-only — safe from
   worker domains and invisible to the PRNG, so determinism holds. *)
let c_apply = Metrics.counter Metrics.default "survivor.apply"

let c_shorted = Metrics.counter Metrics.default "survivor.shorted_by_closure"

let c_connected =
  Metrics.counter Metrics.default "survivor.connected_ignoring_opens"

type t = {
  graph : Digraph.t;
  vertex_image : int array;
  edge_image : int array;
  contracted_classes : int;
}

let contraction_classes g pattern =
  let uf = Union_find.create (Digraph.vertex_count g) in
  Array.iteri
    (fun e s ->
      if Fault.state_equal s Fault.Closed_failure then begin
        let src, dst = Digraph.edge_endpoints g e in
        Union_find.union uf src dst
      end)
    pattern;
  Union_find.compress_labels uf

let apply g pattern =
  Ftcsn_obs.Counter.incr c_apply;
  if Array.length pattern <> Digraph.edge_count g then
    invalid_arg "Survivor.apply: pattern arity";
  let label, classes = contraction_classes g pattern in
  (* Keep only normal edges, then quotient; drop loops created by
     contraction (a switch both of whose links merged is useless). *)
  let normal, new_to_old =
    Digraph.subgraph_by_edges_map g ~keep:(fun e ->
        Fault.state_equal pattern.(e) Fault.Normal)
  in
  let quotient, qmap =
    Digraph.quotient normal ~label ~classes ~drop_self_loops:true
  in
  let edge_image = Array.make (Digraph.edge_count g) (-1) in
  Array.iteri
    (fun new_id old_id -> edge_image.(old_id) <- qmap.(new_id))
    new_to_old;
  { graph = quotient; vertex_image = label; edge_image; contracted_classes = classes }

(* Terminal lists are tiny (the network's inputs and outputs), so the
   duplicate-class checks use pairwise list scans instead of per-call hash
   tables; the Monte-Carlo hot path uses the [_into] variants below, which
   mark union-find roots in a workspace array. *)
let terminals_distinct t terminals =
  let rec distinct_from c = function
    | [] -> true
    | w :: rest -> t.vertex_image.(w) <> c && distinct_from c rest
  in
  let rec go = function
    | [] -> true
    | v :: rest -> distinct_from t.vertex_image.(v) rest && go rest
  in
  go terminals

let merged_pairs t terminals =
  (* a terminal pairs with the *most recent* earlier terminal of its
     class, and pairs are reported in terminal order *)
  let pairs = ref [] in
  let rec go rev_prefix = function
    | [] -> ()
    | v :: rest ->
        let c = t.vertex_image.(v) in
        (match List.find_opt (fun w -> t.vertex_image.(w) = c) rev_prefix with
        | Some w -> pairs := (w, v) :: !pairs
        | None -> ());
        go (v :: rev_prefix) rest
  in
  go [] terminals;
  List.rev !pairs

let shorted_by_closure g pattern ~a ~b =
  Ftcsn_obs.Counter.incr c_shorted;
  let uf = Union_find.create (Digraph.vertex_count g) in
  Array.iteri
    (fun e s ->
      if Fault.state_equal s Fault.Closed_failure then begin
        let src, dst = Digraph.edge_endpoints g e in
        Union_find.union uf src dst
      end)
    pattern;
  Union_find.equiv uf a b

let connected_ignoring_opens g pattern ~a ~b =
  Ftcsn_obs.Counter.incr c_connected;
  (* Conducting edges are those that still exist: normal or closed. *)
  let exists_edge e = not (Fault.state_equal pattern.(e) Fault.Open_failure) in
  let sub = Digraph.subgraph_by_edges g ~keep:exists_edge in
  let dist = Ftcsn_graph.Traverse.bfs_directed sub ~sources:[ a ] in
  dist.(b) >= 0

(* Workspace variants: same semantics and the same [survivor.*] counters
   as the functions above, but all per-trial state lives in a {!Scratch.t}
   owned by the calling worker domain, so the Monte-Carlo inner loop does
   not allocate.  Equivalence is pinned by the qcheck suite. *)

let apply_into sc pattern =
  Ftcsn_obs.Counter.incr c_apply;
  let g = sc.Scratch.graph in
  if Array.length pattern <> Digraph.edge_count g then
    invalid_arg "Survivor.apply_into: pattern arity";
  let uf = sc.Scratch.suf in
  Union_find.Stamped.reset uf;
  Array.iteri
    (fun e s ->
      if Fault.state_equal s Fault.Closed_failure then begin
        let src, dst = Digraph.edge_endpoints g e in
        Union_find.Stamped.union uf src dst
      end)
    pattern

let terminals_distinct_into sc terminals =
  let gen = Scratch.next_generation sc in
  let mark = sc.Scratch.mark and uf = sc.Scratch.suf in
  let rec go = function
    | [] -> true
    | v :: rest ->
        let r = Union_find.Stamped.find uf v in
        if mark.(r) = gen then false
        else begin
          mark.(r) <- gen;
          go rest
        end
  in
  go terminals

let merged_pairs_into sc terminals =
  let gen = Scratch.next_generation sc in
  let mark = sc.Scratch.mark
  and mark_value = sc.Scratch.mark_value
  and uf = sc.Scratch.suf in
  let pairs = ref [] in
  List.iter
    (fun v ->
      let r = Union_find.Stamped.find uf v in
      if mark.(r) = gen then pairs := (mark_value.(r), v) :: !pairs;
      mark.(r) <- gen;
      mark_value.(r) <- v)
    terminals;
  List.rev !pairs

let shorted_by_closure_into sc pattern ~a ~b =
  Ftcsn_obs.Counter.incr c_shorted;
  let g = sc.Scratch.graph in
  let uf = sc.Scratch.suf in
  Union_find.Stamped.reset uf;
  Array.iteri
    (fun e s ->
      if Fault.state_equal s Fault.Closed_failure then begin
        let src, dst = Digraph.edge_endpoints g e in
        Union_find.Stamped.union uf src dst
      end)
    pattern;
  Union_find.Stamped.equiv uf a b

let connected_ignoring_opens_into sc pattern ~a ~b =
  Ftcsn_obs.Counter.incr c_connected;
  (* BFS over the original CSR with open edges masked: subgraphs keep all
     vertices and preserve adjacency order, so reachability is identical
     to the rebuild in [connected_ignoring_opens]. *)
  Ftcsn_graph.Traverse.bfs_directed_into sc.Scratch.graph
    ~edge_ok:(fun e -> not (Fault.state_equal pattern.(e) Fault.Open_failure))
    ~sources:[ a ] ~queue:sc.Scratch.queue ~dist:sc.Scratch.dist;
  sc.Scratch.dist.(b) >= 0
