module Digraph = Ftcsn_graph.Digraph
module Union_find = Ftcsn_util.Union_find
module Metrics = Ftcsn_obs.Metrics

(* telemetry: survivor-graph operations are the inner loop of every
   stochastic reliability estimate, so their call volumes are the first
   thing to look at when a sweep is slow.  Atomic, write-only — safe from
   worker domains and invisible to the PRNG, so determinism holds. *)
let c_apply = Metrics.counter Metrics.default "survivor.apply"

let c_shorted = Metrics.counter Metrics.default "survivor.shorted_by_closure"

let c_connected =
  Metrics.counter Metrics.default "survivor.connected_ignoring_opens"

type t = {
  graph : Digraph.t;
  vertex_image : int array;
  edge_image : int array;
  contracted_classes : int;
}

let contraction_classes g pattern =
  let uf = Union_find.create (Digraph.vertex_count g) in
  Array.iteri
    (fun e s ->
      if Fault.state_equal s Fault.Closed_failure then begin
        let src, dst = Digraph.edge_endpoints g e in
        Union_find.union uf src dst
      end)
    pattern;
  Union_find.compress_labels uf

let apply g pattern =
  Ftcsn_obs.Counter.incr c_apply;
  if Array.length pattern <> Digraph.edge_count g then
    invalid_arg "Survivor.apply: pattern arity";
  let label, classes = contraction_classes g pattern in
  (* Keep only normal edges, then quotient; drop loops created by
     contraction (a switch both of whose links merged is useless). *)
  let normal, new_to_old =
    Digraph.subgraph_by_edges_map g ~keep:(fun e ->
        Fault.state_equal pattern.(e) Fault.Normal)
  in
  let quotient, qmap =
    Digraph.quotient normal ~label ~classes ~drop_self_loops:true
  in
  let edge_image = Array.make (Digraph.edge_count g) (-1) in
  Array.iteri
    (fun new_id old_id -> edge_image.(old_id) <- qmap.(new_id))
    new_to_old;
  { graph = quotient; vertex_image = label; edge_image; contracted_classes = classes }

let terminals_distinct t terminals =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun v ->
      let c = t.vertex_image.(v) in
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.add seen c ();
        true
      end)
    terminals

let merged_pairs t terminals =
  let by_class = Hashtbl.create 16 in
  let pairs = ref [] in
  List.iter
    (fun v ->
      let c = t.vertex_image.(v) in
      (match Hashtbl.find_opt by_class c with
      | Some w -> pairs := (w, v) :: !pairs
      | None -> ());
      Hashtbl.replace by_class c v)
    terminals;
  List.rev !pairs

let shorted_by_closure g pattern ~a ~b =
  Ftcsn_obs.Counter.incr c_shorted;
  let uf = Union_find.create (Digraph.vertex_count g) in
  Array.iteri
    (fun e s ->
      if Fault.state_equal s Fault.Closed_failure then begin
        let src, dst = Digraph.edge_endpoints g e in
        Union_find.union uf src dst
      end)
    pattern;
  Union_find.equiv uf a b

let connected_ignoring_opens g pattern ~a ~b =
  Ftcsn_obs.Counter.incr c_connected;
  (* Conducting edges are those that still exist: normal or closed. *)
  let exists_edge e = not (Fault.state_equal pattern.(e) Fault.Open_failure) in
  let sub = Digraph.subgraph_by_edges g ~keep:exists_edge in
  let dist = Ftcsn_graph.Traverse.bfs_directed sub ~sources:[ a ] in
  dist.(b) >= 0
