module Digraph = Ftcsn_graph.Digraph

type t = {
  graph : Digraph.t;
  input : int;
  output : int;
  rows : int;
  width : int;
}

let make ~rows ~width =
  if rows < 1 || width < 1 then invalid_arg "Hammock.make";
  let b = Digraph.Builder.create () in
  let input = Digraph.Builder.add_vertex b in
  let output = Digraph.Builder.add_vertex b in
  let first = Digraph.Builder.add_vertices b (rows * width) in
  let vertex i j = first + (j * rows) + i in
  for i = 0 to rows - 1 do
    ignore (Digraph.Builder.add_edge b ~src:input ~dst:(vertex i 0));
    ignore (Digraph.Builder.add_edge b ~src:(vertex i (width - 1)) ~dst:output)
  done;
  for j = 0 to width - 2 do
    for i = 0 to rows - 1 do
      ignore (Digraph.Builder.add_edge b ~src:(vertex i j) ~dst:(vertex i (j + 1)));
      if rows > 1 then
        ignore
          (Digraph.Builder.add_edge b ~src:(vertex i j)
             ~dst:(vertex ((i + 1) mod rows) (j + 1)))
    done
  done;
  { graph = Digraph.Builder.freeze b; input; output; rows; width }

(* Both estimators run on the Scratch workspace path: per-worker BFS
   arrays and union-find, no per-trial allocation.  Labels and draw
   order are unchanged, so curves match the historical runs exactly. *)
let open_failure_prob ?jobs ?target_ci ?progress ?trace ~trials ~rng ~eps t =
  Monte_carlo.estimate_event_scratch ?jobs ?target_ci ?progress ?trace
    ~label:"hammock.open_failure_prob" ~trials ~rng ~graph:t.graph
    ~eps_open:eps ~eps_close:eps (fun sc ->
      not
        (Survivor.connected_ignoring_opens_into sc (Scratch.pattern sc)
           ~a:t.input ~b:t.output))

let short_failure_prob ?jobs ?target_ci ?progress ?trace ~trials ~rng ~eps t =
  Monte_carlo.estimate_event_scratch ?jobs ?target_ci ?progress ?trace
    ~label:"hammock.short_failure_prob" ~trials ~rng ~graph:t.graph
    ~eps_open:eps ~eps_close:eps (fun sc ->
      Survivor.shorted_by_closure_into sc (Scratch.pattern sc) ~a:t.input
        ~b:t.output)

let sorted_ascending eps =
  let ok = ref true in
  for k = 1 to Array.length eps - 1 do
    if eps.(k) < eps.(k - 1) then ok := false
  done;
  !ok

let open_failure_prob_curve ?jobs ?progress ?trace ~trials ~rng ~eps t =
  (* Open failure only reads the open-edge set {u < ε}, which is nested
     as ε grows — on an ascending grid the per-trial indicator is
     monotone and later points can short-circuit. *)
  let monotone_event = sorted_ascending eps in
  Monte_carlo.estimate_curve ?jobs ?progress ?trace
    ~label:"hammock.open_failure_prob_curve" ~monotone_event ~trials ~rng
    ~graph:t.graph
    ~grid:(Array.map (fun e -> (e, e)) eps)
    (fun sc ->
      not
        (Survivor.connected_ignoring_opens_into sc (Scratch.pattern sc)
           ~a:t.input ~b:t.output))

let short_failure_prob_curve ?jobs ?progress ?trace ~trials ~rng ~eps t =
  (* The closed-edge set {ε ≤ u < 2ε} is NOT nested in ε, so shorting is
     not monotone along the grid — every point is evaluated. *)
  Monte_carlo.estimate_curve ?jobs ?progress ?trace
    ~label:"hammock.short_failure_prob_curve" ~trials ~rng ~graph:t.graph
    ~grid:(Array.map (fun e -> (e, e)) eps)
    (fun sc ->
      Survivor.shorted_by_closure_into sc (Scratch.pattern sc) ~a:t.input
        ~b:t.output)

let size t = Digraph.edge_count t.graph

let depth t =
  Ftcsn_graph.Traverse.depth t.graph ~inputs:[ t.input ] ~outputs:[ t.output ]
