(** Monte-Carlo estimation of failure probabilities with confidence
    intervals.

    The (ε, δ) properties of §3 are expectations over fault patterns; above
    ~13 edges exact enumeration (see {!Exact}) is infeasible, so experiments
    estimate them from seeded samples and report Wilson 95% intervals.

    These are thin façades over the {!Ftcsn_sim.Trials} engine: trial [i]
    runs on the [i]-th substream of [rng], so estimates are bit-identical
    at every [jobs] and a [jobs:1] run reproduces the historical
    sequential split-per-trial loop exactly.  [target_ci] enables adaptive
    stopping (run until the Wilson 95% half-width drops below it, capped
    at [trials]); [progress] reports cumulative counts and throughput
    after each chunk; [trace]/[label] stream the engine's structured
    JSONL events (chunk timings, stopping decisions) to an
    [Ftcsn_obs.Trace] sink without perturbing any estimate. *)

type estimate = Ftcsn_sim.Trials.estimate = {
  successes : int;
  trials : int;
  mean : float;
  ci_low : float;
  ci_high : float;
}

val of_counts : successes:int -> trials:int -> estimate

val estimate :
  ?jobs:int ->
  ?target_ci:float ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  (Ftcsn_prng.Rng.t -> bool) ->
  estimate
(** Run the Bernoulli experiment up to [trials] times on independent
    substreams of [rng]; the estimate is of P[true]. *)

val estimate_event :
  ?jobs:int ->
  ?target_ci:float ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  graph:Ftcsn_graph.Digraph.t ->
  eps_open:float ->
  eps_close:float ->
  (Fault.pattern -> bool) ->
  estimate
(** Specialisation: refill a per-worker preallocated fault pattern on
    [graph] each trial ({!Fault.sample_into} — no per-trial allocation)
    and test the event.  The pattern is scratch: the callback must not
    retain it across trials. *)

val estimate_event_scratch :
  ?jobs:int ->
  ?target_ci:float ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  graph:Ftcsn_graph.Digraph.t ->
  eps_open:float ->
  eps_close:float ->
  (Scratch.t -> bool) ->
  estimate
(** As {!estimate_event}, but the per-worker state is a full {!Scratch}
    workspace whose pattern buffer is refilled each trial, so the event
    can use the allocation-free [Survivor.*_into] operations
    ({!Scratch.pattern} is the freshly sampled pattern).  Draw order and
    estimates are identical to {!estimate_event}. *)

val pp : Format.formatter -> estimate -> unit
