(** Monte-Carlo estimation of failure probabilities with confidence
    intervals.

    The (ε, δ) properties of §3 are expectations over fault patterns; above
    ~13 edges exact enumeration (see {!Exact}) is infeasible, so experiments
    estimate them from seeded samples and report Wilson 95% intervals.

    These are thin façades over the {!Ftcsn_sim.Trials} engine: trial [i]
    runs on the [i]-th substream of [rng], so estimates are bit-identical
    at every [jobs] and a [jobs:1] run reproduces the historical
    sequential split-per-trial loop exactly.  [target_ci] enables adaptive
    stopping (run until the Wilson 95% half-width drops below it, capped
    at [trials]); [progress] reports cumulative counts and throughput
    after each chunk; [trace]/[label] stream the engine's structured
    JSONL events (chunk timings, stopping decisions) to an
    [Ftcsn_obs.Trace] sink without perturbing any estimate. *)

type estimate = Ftcsn_sim.Trials.estimate = {
  successes : int;
  trials : int;
  mean : float;
  ci_low : float;
  ci_high : float;
}

val of_counts : successes:int -> trials:int -> estimate

val estimate :
  ?jobs:int ->
  ?target_ci:float ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  (Ftcsn_prng.Rng.t -> bool) ->
  estimate
(** Run the Bernoulli experiment up to [trials] times on independent
    substreams of [rng]; the estimate is of P[true]. *)

val estimate_event :
  ?jobs:int ->
  ?target_ci:float ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  graph:Ftcsn_graph.Digraph.t ->
  eps_open:float ->
  eps_close:float ->
  (Fault.pattern -> bool) ->
  estimate
(** Specialisation: refill a per-worker preallocated fault pattern on
    [graph] each trial ({!Fault.sample_into} — no per-trial allocation)
    and test the event.  The pattern is scratch: the callback must not
    retain it across trials. *)

val estimate_event_scratch :
  ?jobs:int ->
  ?target_ci:float ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  graph:Ftcsn_graph.Digraph.t ->
  eps_open:float ->
  eps_close:float ->
  (Scratch.t -> bool) ->
  estimate
(** As {!estimate_event}, but the per-worker state is a full {!Scratch}
    workspace whose pattern buffer is refilled each trial, so the event
    can use the allocation-free [Survivor.*_into] operations
    ({!Scratch.pattern} is the freshly sampled pattern).  Draw order and
    estimates are identical to {!estimate_event}. *)

val estimate_curve :
  ?jobs:int ->
  ?progress:(Ftcsn_sim.Trials.progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  ?monotone_event:bool ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  graph:Ftcsn_graph.Digraph.t ->
  grid:(float * float) array ->
  (Scratch.t -> bool) ->
  estimate array
(** Coupled ε-curve: one estimate per [(eps_open, eps_close)] grid point,
    all sharing the same [trials] executions.  Each trial draws one
    uniform per edge ({!Fault.sample_uniforms_into} into the workspace's
    {!Scratch.uniforms}), then thresholds that same draw vector at every
    grid point ({!Fault.classify_into}) — common random numbers, so the
    per-trial event indicators are coupled across the curve and curve
    differences have far lower variance than independent runs.  The
    event sees the freshly classified {!Scratch.pattern} exactly as
    {!estimate_event_scratch} would: on a 1-point grid the estimate is
    bit-identical to [estimate_event_scratch] with the same arguments
    (same draws, same thresholds, same engine).

    [monotone_event:true] asserts the event is nondecreasing along the
    grid order within every trial (true e.g. for open-connectivity
    failure on a grid sorted by ascending [eps_open] with [eps_close]
    fixed at 0, where the usable-edge set only shrinks); once a trial's
    indicator turns true, later points are recorded true without
    re-evaluating — a pure short-circuit, identical results by the
    asserted monotonicity.  Default [false].

    No adaptive stopping; deterministic at every [jobs], tracing
    observational, [label] defaults to ["monte_carlo.curve"]. *)

val pp : Format.formatter -> estimate -> unit
