module Digraph = Ftcsn_graph.Digraph
module Stamped = Ftcsn_util.Union_find.Stamped
module Metrics = Ftcsn_obs.Metrics

let c_rebuild = Metrics.counter Metrics.default "dyn_conn.rebuilds"

(* Closed-failure connectivity as an incremental overlay.

   Closing an edge unions its endpoints in a generation-stamped forest —
   O(alpha) — and maintains a per-root count of terminals so the Lemma-7
   "two terminals in one contraction class" verdict is a flag read.
   Reopening an edge cannot split a union-find class, so it only marks
   the structure dirty; the next query bumps the generation (an O(1)
   reset) and re-unions the *live* closed set, whose membership is kept
   in an items/pos index pool.  Failures are rare relative to queries and
   the live closed set is small in any survivable regime, so the rebuild
   amortises to far below the O(n + m) scan it replaces. *)
type t = {
  graph : Digraph.t;
  suf : Stamped.t;
  is_terminal : bool array;
  (* per-root live-terminal count, valid when tstamp matches the forest
     generation; a root never observed this generation counts itself *)
  tcount : int array;
  tstamp : int array;
  (* closed-edge index pool: [closed] is a permutation of [0, m) whose
     prefix [0, csize) is the currently-closed set, [cpos] its inverse *)
  closed : int array;
  cpos : int array;
  mutable csize : int;
  mutable shorted : bool;
  mutable dirty : bool;
  mutable rebuilds : int;
}

let create ~terminals graph =
  let n = Digraph.vertex_count graph in
  let m = Digraph.edge_count graph in
  let is_terminal = Array.make n false in
  List.iter (fun v -> is_terminal.(v) <- true) terminals;
  {
    graph;
    suf = Stamped.create n;
    is_terminal;
    tcount = Array.make n 0;
    tstamp = Array.make n 0;
    closed = Array.init m Fun.id;
    cpos = Array.init m Fun.id;
    csize = 0;
    shorted = false;
    dirty = false;
    rebuilds = 0;
  }

let closed_count t = t.csize

let rebuilds t = t.rebuilds

let tcount_of t r =
  if t.tstamp.(r) = Stamped.generation t.suf then t.tcount.(r)
  else if t.is_terminal.(r) then 1
  else 0

let union_endpoints t e =
  let u, v = Digraph.edge_endpoints t.graph e in
  let ru = Stamped.find t.suf u and rv = Stamped.find t.suf v in
  if ru <> rv then begin
    let total = tcount_of t ru + tcount_of t rv in
    Stamped.union t.suf ru rv;
    let r = Stamped.find t.suf u in
    t.tcount.(r) <- total;
    t.tstamp.(r) <- Stamped.generation t.suf;
    if total >= 2 then t.shorted <- true
  end

let flush t =
  if t.dirty then begin
    Stamped.reset t.suf;
    t.shorted <- false;
    for i = 0 to t.csize - 1 do
      union_endpoints t t.closed.(i)
    done;
    t.dirty <- false;
    t.rebuilds <- t.rebuilds + 1;
    Ftcsn_obs.Counter.incr c_rebuild
  end

let close t e =
  let i = t.cpos.(e) in
  if i >= t.csize then begin
    let j = t.csize in
    let y = t.closed.(j) in
    t.closed.(j) <- e;
    t.cpos.(e) <- j;
    t.closed.(i) <- y;
    t.cpos.(y) <- i;
    t.csize <- j + 1;
    (* a pending rebuild will union the whole live set, [e] included *)
    if not t.dirty then union_endpoints t e
  end

let reopen t e =
  let i = t.cpos.(e) in
  if i < t.csize then begin
    let last = t.csize - 1 in
    let y = t.closed.(last) in
    t.closed.(i) <- y;
    t.cpos.(y) <- i;
    t.closed.(last) <- e;
    t.cpos.(e) <- last;
    t.csize <- last;
    t.dirty <- true
  end

let connected t a b =
  flush t;
  Stamped.equiv t.suf a b

let terminals_shorted t =
  flush t;
  t.shorted
