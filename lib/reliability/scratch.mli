(** Per-domain trial workspace: every array a stochastic trial needs,
    allocated once and reused.

    The Monte-Carlo inner loops (fault sampling, survivor contraction,
    reachability probes) are pure array computations over a fixed graph;
    the only reason they ever touched the allocator was that each trial
    built its scratch state afresh.  A [Scratch.t] hoists all of it — a
    fault pattern, a resettable union-find, BFS queue/distance/parent
    arrays and a generation-stamped marking array — into one bundle that
    {!Ftcsn_sim.Trials.run_scratch} creates once per worker domain via its
    [~init] hook.  Workspaces are single-domain state: never share one
    between domains.

    Creations are counted in [Ftcsn_obs.Metrics.default] under
    [scratch.create]; a healthy sweep shows this counter at ~[jobs] while
    the [survivor.*] operation counters grow with the trial count.

    The record is exposed so that the scratch-path operations in
    {!Survivor}, [Ftcsn.Fault_strip] and friends can reach the arrays;
    treat the fields as owned by those operations.  Reset discipline:
    every operation that uses a field re-initialises exactly the state it
    reads ([Union_find.reset] before unions, a full [dist] fill before
    BFS, a {!next_generation} bump instead of clearing [mark]), so no
    stale state survives from one trial to the next. *)

type t = {
  graph : Ftcsn_graph.Digraph.t;  (** the graph all trials run over *)
  pattern : Fault.pattern;
      (** per-trial fault pattern buffer, length [edge_count graph] *)
  uniforms : float array;
      (** per-trial CRN draw buffer, length [edge_count graph]: one
          uniform per edge ({!Fault.sample_uniforms_into}), thresholded
          into [pattern] at each ε-grid point by
          {!Fault.classify_into} *)
  faulty : Ftcsn_util.Bitset.t;
      (** faulty-vertex buffer, capacity [vertex_count graph] (refill
          with {!Fault.faulty_vertices_into}) *)
  suf : Ftcsn_util.Union_find.Stamped.t;
      (** contraction classes; generation-stamped, so the per-use reset
          is O(1) instead of O(n) — the epoch trick {!Dyn_conn} extends
          to incremental failure/repair sequences *)
  queue : int array;  (** BFS ring buffer, length [vertex_count graph] *)
  dist : int array;  (** BFS distances, length [vertex_count graph] *)
  parent : int array;
      (** BFS parents for path extraction, length [vertex_count graph] *)
  mark : int array;
      (** generation stamps: [mark.(v) = generation] means marked *)
  mark_value : int array;  (** payload accompanying a mark *)
  mutable generation : int;  (** current marking generation *)
}

val create : Ftcsn_graph.Digraph.t -> t
(** Fresh workspace for a graph; the only allocation on the scratch
    path.  Counted under [scratch.create] in the default metrics
    registry. *)

val graph : t -> Ftcsn_graph.Digraph.t

val pattern : t -> Fault.pattern
(** The workspace's own fault-pattern buffer (refill it with
    {!Fault.sample_into}). *)

val uniforms : t -> float array
(** The workspace's own CRN draw buffer (refill it with
    {!Fault.sample_uniforms_into}). *)

val faulty : t -> Ftcsn_util.Bitset.t
(** The workspace's own faulty-vertex bitset (refill it with
    {!Fault.faulty_vertices_into}). *)

val next_generation : t -> int
(** Bump and return the marking generation — an O(1) clear of [mark]. *)
