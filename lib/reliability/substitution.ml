module Digraph = Ftcsn_graph.Digraph

type t = {
  graph : Digraph.t;
  vertex_image : int array;
  gadget : Sp_network.built;
  original_edges : int;
}

let substitute g ~gadget =
  let { Sp_network.graph = gg; input = gin; output = gout } = gadget in
  let gn = Digraph.vertex_count gg in
  let n = Digraph.vertex_count g in
  let b = Digraph.Builder.create () in
  let vertex_image = Array.init n (fun _ -> Digraph.Builder.add_vertex b) in
  (* For each original edge, instantiate the gadget's internal vertices
     (all but its two terminals) and copy its edges with endpoints mapped.
     Gadget edges are emitted in gadget edge-id order so composite edge
     ids are [k * gadget_size + j]. *)
  Digraph.iter_edges g (fun ~eid:_ ~src ~dst ->
      let local = Array.make gn (-1) in
      local.(gin) <- vertex_image.(src);
      local.(gout) <- vertex_image.(dst);
      for v = 0 to gn - 1 do
        if local.(v) = -1 then local.(v) <- Digraph.Builder.add_vertex b
      done;
      for ge = 0 to Digraph.edge_count gg - 1 do
        let gs, gd = Digraph.edge_endpoints gg ge in
        ignore (Digraph.Builder.add_edge b ~src:local.(gs) ~dst:local.(gd))
      done);
  {
    graph = Digraph.Builder.freeze b;
    vertex_image;
    gadget;
    original_edges = Digraph.edge_count g;
  }

let size_factor g ~gadget =
  let m = Digraph.edge_count g in
  if m = 0 then 0.0
  else
    let substituted = substitute g ~gadget in
    float_of_int (Digraph.edge_count substituted.graph) /. float_of_int m

let logical_rates ?jobs ?trace ~trials ~rng ~eps_open ~eps_close t =
  let gg = t.gadget.Sp_network.graph in
  let gin = t.gadget.Sp_network.input and gout = t.gadget.Sp_network.output in
  let counts =
    Ftcsn_sim.Trials.map_reduce ?jobs ?trace
      ~label:"substitution.logical_rates" ~trials ~rng
      ~init:(fun () -> Scratch.create gg)
      ~create_acc:(fun () -> [| 0; 0 |])
      ~trial:(fun sc acc sub ->
        let slice = Scratch.pattern sc in
        Fault.sample_into sub ~eps_open ~eps_close slice;
        if Survivor.shorted_by_closure_into sc slice ~a:gin ~b:gout then
          acc.(1) <- acc.(1) + 1
        else if
          not (Survivor.connected_ignoring_opens_into sc slice ~a:gin ~b:gout)
        then acc.(0) <- acc.(0) + 1)
      ~combine:(fun global chunk ->
        global.(0) <- global.(0) + chunk.(0);
        global.(1) <- global.(1) + chunk.(1))
      ()
  in
  ( Ftcsn_sim.Trials.of_counts ~successes:counts.(0) ~trials,
    Ftcsn_sim.Trials.of_counts ~successes:counts.(1) ~trials )

let logical_pattern t pattern =
  let gg = t.gadget.Sp_network.graph in
  let gm = Digraph.edge_count gg in
  if Array.length pattern <> t.original_edges * gm then
    invalid_arg "Substitution.logical_pattern: pattern arity";
  Array.init t.original_edges (fun k ->
      let slice = Array.sub pattern (k * gm) gm in
      if
        Survivor.shorted_by_closure gg slice ~a:t.gadget.Sp_network.input
          ~b:t.gadget.Sp_network.output
      then Fault.Closed_failure
      else if
        not
          (Survivor.connected_ignoring_opens gg slice
             ~a:t.gadget.Sp_network.input ~b:t.gadget.Sp_network.output)
      then Fault.Open_failure
      else Fault.Normal)
