(** Rare-event estimators for the paper's ε = 10⁻⁶ operating regime.

    Theorem 2 fixes ε = 10⁻⁶, where failure probabilities sit at
    10⁻⁴–10⁻¹² and plain Monte-Carlo — even the CRN ε-curve sweeps —
    observes zero failures at any affordable trial count.  This module
    provides the two standard variance-reduction families for static
    rare-event estimation, both driven through {!Ftcsn_sim.Trials} so
    estimates stay bit-identical at every [jobs] count:

    {ul
    {- {e Multilevel splitting} (RESTART): the failure event is expressed
       through a scalar importance function φ(u) of the per-edge uniform
       vector u — here the {e critical ε}: the smallest failure rate at
       which thresholding u produces a failing fault set
       ([Ftcsn.Rare.threshold] supplies it for the paper's networks).  The rare set [{φ ≤ ε}] is reached
       through a nested ladder of intermediate levels
       [L₀ > L₁ > … > ε]; particles that cross a level are cloned and
       mutated by a Markov kernel that leaves the conditional law
       [U[0,1)ᵐ | φ ≤ Lᵈ] invariant (block Metropolis: resample a random
       coordinate subset, accept iff the constraint still holds).  The
       per-trial estimator — leaves at the last level over the product of
       splitting factors — is unbiased for [P[φ ≤ ε]] for {e any} level
       schedule; {!pilot} only tunes the schedule for variance.}
    {- {e Cross-entropy tilted importance sampling}: fault patterns are
       drawn at inflated per-edge probabilities ({!tilt}), each trial
       weighted by its likelihood ratio against the target (ε₁, ε₂).
       Unbiased for {e any} event (monotone or not); {!cross_entropy}
       tunes the tilt by iterating the CE update on weighted fault
       frequencies among observed failures.  {!tilted_curve} shares one
       sampled pattern per trial across a whole (ε₁, ε₂) grid — only the
       weights change per point — so a rare-event curve costs one event
       evaluation per trial, CRN-comparable across grid points.}}

    Both estimators report a {!estimate} with relative error and a
    variance-ratio diagnostic (per-trial variance of a plain-MC Bernoulli
    trial at the same mean over this estimator's per-trial variance — the
    headline "how many MC trials does one of ours buy").  Pilot phases
    ({!pilot}, {!cross_entropy}) run sequentially on the caller's stream;
    estimation fans out on the {!Ftcsn_sim.Trials} scheduler.
    Diagnostics accumulate in [Ftcsn_obs.Metrics.default] under
    [rare.*]. *)

type estimate = {
  mean : float;  (** point estimate of the failure probability *)
  rel_err : float;
      (** standard error over mean ([infinity] when the mean is zero —
          the estimator saw no failure mass) *)
  ci_low : float;  (** normal-approximation 95% interval, clamped at 0 *)
  ci_high : float;
  trials : int;  (** independent root trials executed *)
  var_per_trial : float;  (** sample variance of the per-trial estimator *)
  variance_ratio : float;
      (** [mean·(1−mean) / var_per_trial]: plain-MC Bernoulli variance at
          the same mean over this estimator's per-trial variance *)
  evals : int;
      (** importance-function / event evaluations performed (the cost
          unit for efficiency comparisons) *)
}

val pp : Format.formatter -> estimate -> unit
(** Render as ["mean [lo, hi] rel_err=… (trials)"]. *)

(** {2 Multilevel splitting} *)

type schedule = {
  levels : float array;
      (** strictly decreasing; [levels.(K-1)] is the target ε *)
  splits : int array;
      (** length [K-1]; [splits.(d)] children per particle crossing from
          level [d] to [d+1] *)
  entry_rate : float;
      (** pilot estimate of [P[φ ≤ levels.(0)]] (diagnostic only) *)
}

val pilot :
  ?particles:int ->
  ?p0:float ->
  ?max_levels:int ->
  ?mutate:float ->
  ?moves:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  rng:Ftcsn_prng.Rng.t ->
  m:int ->
  target:float ->
  init:(unit -> 'ws) ->
  prepare:('ws -> Ftcsn_prng.Rng.t -> unit) ->
  threshold:('ws -> float array -> float) ->
  unit ->
  schedule
(** Auto-tune a level schedule by an adaptive-quantile cascade: maintain
    a population of [particles] (default 256) uniform vectors, repeatedly
    set the next level to the [p0]-quantile (default 0.2) of their φ
    values, then rebuild the population from the survivors by [moves]
    (default 6) constrained Metropolis moves (each resampling a [mutate]
    fraction of coordinates, default 0.2).  Stops when the quantile
    reaches [target]; splitting factors are the rounded inverse of each
    observed conditional crossing rate.  Sequential and deterministic in
    [rng]; [prepare] is called once, so the whole pilot runs under one
    probe plan — the schedule is a tuning input only, any schedule keeps
    {!run} unbiased.  Each level is wrapped in a [rare.pilot.level-d]
    trace span.  @raise Invalid_argument if [target] is not reached
    within [max_levels] (default 40) levels. *)

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  ?mutate:float ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  m:int ->
  schedule:schedule ->
  init:(unit -> 'ws) ->
  prepare:('ws -> Ftcsn_prng.Rng.t -> unit) ->
  threshold:('ws -> float array -> float) ->
  unit ->
  estimate
(** Estimate [P[φ ≤ levels.(K-1)]] from [trials] independent splitting
    replicates on the {!Ftcsn_sim.Trials} scheduler (bit-identical at
    every [jobs]).  Each trial draws a root vector on its own substream
    ([prepare] first fixes any per-trial randomness of φ, e.g. a probe
    plan), then grows the splitting tree depth-first: a particle at level
    [d] spawns [splits.(d)] children by one constrained Metropolis move
    at level [d], and a child survives to level [d+1] iff its φ clears
    [levels.(d+1)].  The per-trial estimator is the leaf count over
    [Π splits], so with a 1-level schedule ([levels = [|ε|]]) this {e is}
    plain Monte-Carlo.  Memory per worker is K + 1 vectors of length
    [m].  Per-level spawn/survival counts land in
    [rare.split.level*] counters. *)

(** {2 Cross-entropy tilted importance sampling} *)

type tilt = {
  t_open : float array;  (** per-edge open-failure sampling probability *)
  t_close : float array;
}

val uniform_tilt : m:int -> eps_open:float -> eps_close:float -> tilt
(** The constant tilt sampling every edge at (eps_open, eps_close). *)

val cross_entropy :
  ?iters:int ->
  ?trials:int ->
  ?smoothing:float ->
  ?per_edge:bool ->
  ?init_tilt:tilt ->
  ?trace:Ftcsn_obs.Trace.sink ->
  rng:Ftcsn_prng.Rng.t ->
  m:int ->
  eps_open:float ->
  eps_close:float ->
  init:(unit -> 'ws) ->
  event:('ws -> Ftcsn_prng.Rng.t -> Fault.pattern -> bool) ->
  unit ->
  tilt
(** Tune a tilt for the target (eps_open, eps_close) by [iters] (default
    4) cross-entropy iterations of [trials] (default 1000) samples each:
    draw at the current tilt, weight failures by their likelihood ratio
    against the target, and move the tilt toward the weighted fault
    frequency among failures (pooled across edges by default; [per_edge]
    keeps one rate per edge).  [smoothing] (default 0.5) is the step
    fraction toward the update.  The returned tilt is floored at the
    target probabilities — per-edge likelihood ratios on failed edges
    never exceed 1, so weights cannot blow up — and capped away from 1.
    An iteration that observes no failure doubles the tilt instead.
    Sequential and deterministic in [rng]; each iteration is wrapped in a
    [rare.ce.iter-k] trace span.  The default [init_tilt] inflates the
    target so a sample averages a handful of faulty switches. *)

val tilted :
  ?jobs:int ->
  ?chunk:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  m:int ->
  eps_open:float ->
  eps_close:float ->
  tilt:tilt ->
  init:(unit -> 'ws) ->
  event:('ws -> Ftcsn_prng.Rng.t -> Fault.pattern -> bool) ->
  unit ->
  estimate
(** Estimate [P[event]] under the target (eps_open, eps_close) by
    importance sampling at [tilt]: each trial draws a pattern with
    {!Fault.sample_tilted_into} on its own substream, evaluates [event]
    (the substream, positioned after the per-edge draws, is passed
    through for probe randomness), and contributes its likelihood ratio
    when the event holds.  Exactly unbiased for any event and any valid
    tilt.  Runs on {!Ftcsn_sim.Trials} — bit-identical at every
    [jobs]. *)

val tilted_curve :
  ?jobs:int ->
  ?chunk:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  m:int ->
  grid:(float * float) array ->
  tilt:tilt ->
  init:(unit -> 'ws) ->
  event:('ws -> Ftcsn_prng.Rng.t -> Fault.pattern -> bool) ->
  unit ->
  estimate array
(** One estimate per (eps_open, eps_close) grid point, all from the
    {e same} [trials] patterns sampled at [tilt]: the sampled pattern —
    and therefore the event evaluation — is shared across the grid; only
    the likelihood ratio differs per point (it depends on the pattern
    only through its open/closed fault counts).  The whole rare-event
    curve costs one event evaluation per trial and the points are
    CRN-comparable, the tilted analogue of {!Ftcsn_sim.Trials.sweep}.
    [tilted] of a point agrees with the corresponding entry of a
    [tilted_curve] up to floating-point association.  Points far from
    the tilt carry larger [rel_err]; widen the grid only with a tilt
    tuned near its geometric centre. *)
