module Digraph = Ftcsn_graph.Digraph
module Union_find = Ftcsn_util.Union_find
module Bitset = Ftcsn_util.Bitset
module Metrics = Ftcsn_obs.Metrics

(* One workspace is created per worker domain (via Trials.run_scratch's
   ~init hook) and then reused for every trial that domain executes, so
   this counter staying at ~jobs while the survivor.* operation counters
   grow with the trial count is what makes the zero-allocation claim
   observable in `ftnet --metrics` output. *)
let c_create = Metrics.counter Metrics.default "scratch.create"

type t = {
  graph : Digraph.t;
  pattern : Fault.pattern;
  uniforms : float array;
  faulty : Bitset.t;
  suf : Union_find.Stamped.t;
  queue : int array;
  dist : int array;
  parent : int array;
  mark : int array;
  mark_value : int array;
  mutable generation : int;
}

let create graph =
  Ftcsn_obs.Counter.incr c_create;
  let n = Digraph.vertex_count graph in
  let m = Digraph.edge_count graph in
  {
    graph;
    pattern = Fault.all_normal m;
    uniforms = Array.make m 0.0;
    faulty = Bitset.create n;
    suf = Union_find.Stamped.create n;
    queue = Array.make n 0;
    dist = Array.make n (-1);
    parent = Array.make n (-1);
    mark = Array.make n 0;
    mark_value = Array.make n 0;
    generation = 0;
  }

let graph t = t.graph

let pattern t = t.pattern

let uniforms t = t.uniforms

let faulty t = t.faulty

let next_generation t =
  (* generation 0 is the array fill value, so the first bump must skip
     it; wrap-around would take 2^62 trials and is ignored *)
  t.generation <- t.generation + 1;
  t.generation
