(** Switch criticality (Birnbaum importance) under the three-state model.

    Classical Birnbaum importance ranks components by ∂P[fail]/∂p_e; with
    open and closed failures a switch has {e two} importances:

    - open importance  I⁰_e = P[event | e open]   − P[event | e normal]
    - close importance I¹_e = P[event | e closed] − P[event | e normal]

    estimated by paired sampling (common random states for every other
    switch, e forced three ways), so the difference estimator is low
    variance.  Used to answer "which switches should be hardened first" —
    e.g. on network 𝒩, terminal-adjacent grid switches dominate, which is
    the quantitative form of why the paper interfaces terminals through
    grids. *)

type estimate = {
  switch : int;
  open_importance : float;
  close_importance : float;
}

val importance :
  ?jobs:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  graph:Ftcsn_graph.Digraph.t ->
  eps:float ->
  init:(unit -> 'ws) ->
  event:('ws -> Fault.pattern -> bool) ->
  switches:int array ->
  unit ->
  estimate array
(** Paired Monte-Carlo estimates for the listed switches; [event] is the
    failure predicate, evaluated 3·|switches| times per trial against a
    per-worker workspace created by [init] (pass [fun () -> ()] and
    ignore the workspace for stateless events; pass e.g. a
    [Fault_strip.create_ws] thunk so the event can run allocation-free).
    Runs on the {!Ftcsn_sim.Trials} engine (one substream and one reused
    pattern buffer per trial), so results are identical at every
    [jobs]. *)

val rank :
  ?jobs:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  graph:Ftcsn_graph.Digraph.t ->
  eps:float ->
  init:(unit -> 'ws) ->
  event:('ws -> Fault.pattern -> bool) ->
  ?sample:int ->
  unit ->
  estimate array
(** Estimate importance for [sample] (default 32) uniformly chosen
    switches and return them sorted by total importance, descending. *)
