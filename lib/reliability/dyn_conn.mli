(** Incremental/decremental closed-failure connectivity.

    The DES traffic engine needs two queries after every switch event:
    "are these vertices contracted together by closed failures?" and the
    Lemma-7 catastrophe check "do any two terminals share a closed
    contraction class?".  The batch answer ({!Survivor.shorted_by_closure}
    and the [terminals_shorted] scan it implied) rebuilds a union-find
    over the whole edge array — O(n + m) per event, which is exactly what
    caps the engine at small n.

    This structure makes fault state an overlay over the static topology:

    - {!close} unions the edge's endpoints in a generation-stamped forest
      ({!Ftcsn_util.Union_find.Stamped}) and maintains a per-root count of
      terminals, so the catastrophe verdict is maintained, not recomputed
      — amortised O(alpha).
    - {!reopen} cannot split a class, so it just removes the edge from the
      live closed set (an items/pos index pool, O(1)) and ticks a rebuild
      epoch: the next query pays one O(1) generation bump plus a re-union
      of only the {e currently} closed edges — O(f·alpha) for f live
      failures, not O(m).

    Verdicts agree exactly with the batch oracles at every point of any
    close/reopen sequence; the qcheck suite pins this against
    {!Survivor.shorted_by_closure_into} on every registry family.

    Single-domain state: never share an instance between domains.
    Rebuilds are counted under [dyn_conn.rebuilds] in the default metrics
    registry. *)

type t

val create : terminals:int list -> Ftcsn_graph.Digraph.t -> t
(** Workspace over a fixed graph with the given terminal set (the
    vertices whose contraction constitutes a catastrophe).  All edges
    start normal. *)

val close : t -> int -> unit
(** Mark an edge closed-failed.  No-op if already closed. *)

val reopen : t -> int -> unit
(** Repair a closed edge.  No-op if not closed.  O(1) now; the deferred
    epoch rebuild runs at the next query. *)

val connected : t -> int -> int -> bool
(** [connected t a b]: are [a] and [b] in one closed-contraction class?
    Same verdict as {!Survivor.shorted_by_closure} on the equivalent
    fault pattern. *)

val terminals_shorted : t -> bool
(** Lemma-7 catastrophe: do two terminals share a closed class?  O(1)
    when no repair is pending. *)

val closed_count : t -> int
(** Number of currently-closed edges. *)

val rebuilds : t -> int
(** Epoch rebuilds performed so far (observability; also counted under
    [dyn_conn.rebuilds]). *)
