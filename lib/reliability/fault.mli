(** The random switch failure model (paper, §1–§3).

    Each switch (edge) is independently in one of three states:
    - {e open failure} (probability ε₁): the switch is permanently off —
      the edge ceases to exist;
    - {e closed failure} (probability ε₂): the switch is permanently on —
      the edge's endpoints contract to one vertex;
    - {e normal} (probability 1 − ε₁ − ε₂): a controllable switch.

    A fault pattern assigns a state to every edge id of a graph. *)

type state = Normal | Open_failure | Closed_failure

type pattern = state array
(** Indexed by edge id. *)

val state_equal : state -> state -> bool

val pp_state : Format.formatter -> state -> unit

val sample : Ftcsn_prng.Rng.t -> eps_open:float -> eps_close:float -> m:int -> pattern
(** Independent per-edge sample.  Requires [eps_open + eps_close <= 1]. *)

val sample_into :
  Ftcsn_prng.Rng.t -> eps_open:float -> eps_close:float -> pattern -> unit
(** Refill a preallocated pattern in place, drawing one uniform per edge
    in ascending edge order — the same stream consumption as {!sample},
    so the two agree draw-for-draw on equal streams.  This is the
    zero-allocation inner loop used by the {!Ftcsn_sim.Trials} scratch
    buffers. *)

val sample_tilted_into :
  Ftcsn_prng.Rng.t -> tilt_open:float array -> tilt_close:float array ->
  pattern -> unit
(** Independent per-edge sample under {e per-edge} failure probabilities
    — the proposal draw of importance-tilted estimation
    ({!Ftcsn_reliability.Splitting}).  Edge [e] is open with probability
    [tilt_open.(e)], closed with [tilt_close.(e)]; one uniform is drawn
    per edge in ascending edge order, so with constant tilt arrays this
    agrees with {!sample_into} draw-for-draw on equal streams.  Requires
    [tilt_open.(e) + tilt_close.(e) <= 1] for every edge and lengths
    equal to the pattern's. *)

val sample_uniforms_into : Ftcsn_prng.Rng.t -> float array -> unit
(** Draw one uniform per cell in ascending index order into a
    caller-owned buffer (length [edge_count]).  Consumes the stream
    exactly as {!sample_into} does, so
    [sample_into rng ~eps_open ~eps_close p] is equivalent to
    [sample_uniforms_into rng u; classify_into ~uniforms:u ~eps_open
    ~eps_close p] on equal streams — the common-random-numbers (CRN)
    decomposition behind the ε-curve sweep path. *)

val classify_into :
  uniforms:float array -> eps_open:float -> eps_close:float -> pattern -> unit
(** Threshold a stored draw vector into a fault pattern:
    [u < eps_open] ⇒ [Open_failure], [u < eps_open +. eps_close] ⇒
    [Closed_failure], else [Normal] — the same thresholds, in the same
    order, as {!sample_into}.  Calling this at several (ε₁, ε₂) grid
    points over one [uniforms] vector yields coupled patterns whose
    non-normal edge sets are nested as ε₁ + ε₂ grows.  Requires
    [eps_open + eps_close <= 1] and equal lengths. *)

val classify_into_changed :
  uniforms:float array -> eps_open:float -> eps_close:float -> pattern -> bool
(** As {!classify_into}, but additionally reports whether any entry of
    [pattern] changed.  [false] means the buffer already held exactly
    the classification of [uniforms] at these thresholds — on a CRN
    ε-grid walk, every pattern-derived result (stripping, probes on a
    fixed RNG state) is then necessarily identical to the previous
    point's and can be reused without re-evaluation. *)

val all_normal : int -> pattern

val count : pattern -> state -> int

val failed_edges : pattern -> int list
(** Ids of edges in either failure state, ascending. *)

val pattern_probability : pattern -> eps_open:float -> eps_close:float -> float
(** Product of per-edge state probabilities — the measure assigned to one
    point of the event space Ω in §3. *)

val faulty_vertices : Ftcsn_graph.Digraph.t -> pattern -> Ftcsn_util.Bitset.t
(** Vertices incident to at least one failed edge — the paper's §6 notion
    "say a vertex η of 𝒩 is faulty if an edge (ζ, η) or (η, ζ) is in open
    or closed failure state". *)

val faulty_vertices_into :
  Ftcsn_graph.Digraph.t -> pattern -> Ftcsn_util.Bitset.t -> unit
(** As {!faulty_vertices}, clearing and refilling a caller-owned bitset
    (capacity [vertex_count g]) instead of allocating one. *)
