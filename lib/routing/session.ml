module Network = Ftcsn_networks.Network
module Rng = Ftcsn_prng.Rng

type path_choice =
  | Shortest
  | Randomised of Rng.t

type stats = {
  offered : int;
  served : int;
  blocked : int;
  released : int;
  max_concurrent : int;
}

(* a thin bookkeeping layer over the Greedy router: terminal-index call
   table, per-call paths and cumulative counters; all path finding —
   including the randomised tie-break — lives in Greedy *)
type t = {
  net : Network.t;
  router : Greedy.t;
  calls : (int, int * int list) Hashtbl.t;
      (** input index -> (output index, path) *)
  output_busy : bool array;
  mutable offered : int;
  mutable served : int;
  mutable blocked : int;
  mutable released : int;
  mutable max_concurrent : int;
}

let create ?allowed ~choice net =
  let rng = match choice with Shortest -> None | Randomised rng -> Some rng in
  {
    net;
    router = Greedy.create ?allowed ?rng net;
    calls = Hashtbl.create 64;
    output_busy = Array.make (Network.n_outputs net) false;
    offered = 0;
    served = 0;
    blocked = 0;
    released = 0;
    max_concurrent = 0;
  }

let request t ~input ~output =
  if Hashtbl.mem t.calls input then
    invalid_arg "Session.request: input already in a call";
  if t.output_busy.(output) then
    invalid_arg "Session.request: output already in a call";
  t.offered <- t.offered + 1;
  let src = t.net.Network.inputs.(input)
  and dst = t.net.Network.outputs.(output) in
  match Greedy.route t.router ~input:src ~output:dst with
  | None ->
      t.blocked <- t.blocked + 1;
      None
  | Some path ->
      Hashtbl.replace t.calls input (output, path);
      t.output_busy.(output) <- true;
      t.served <- t.served + 1;
      t.max_concurrent <- max t.max_concurrent (Hashtbl.length t.calls);
      Some path

let hangup t ~input =
  match Hashtbl.find_opt t.calls input with
  | None -> raise Not_found
  | Some (output, path) ->
      Greedy.release t.router path;
      Hashtbl.remove t.calls input;
      t.output_busy.(output) <- false;
      t.released <- t.released + 1

let live_calls t =
  Hashtbl.fold (fun i (o, _) acc -> (i, o) :: acc) t.calls []

let stats t =
  {
    offered = t.offered;
    served = t.served;
    blocked = t.blocked;
    released = t.released;
    max_concurrent = t.max_concurrent;
  }

let run_random_traffic t ~rng ~steps ~arrival_prob =
  let n_in = Network.n_inputs t.net and n_out = Network.n_outputs t.net in
  for _ = 1 to steps do
    let live = Hashtbl.length t.calls in
    let arrive =
      (live = 0 || Rng.bernoulli rng arrival_prob) && live < min n_in n_out
    in
    if arrive then begin
      (* uniform idle input and output *)
      let idle_inputs =
        List.filter (fun i -> not (Hashtbl.mem t.calls i)) (List.init n_in Fun.id)
      in
      let idle_outputs =
        List.filter (fun o -> not t.output_busy.(o)) (List.init n_out Fun.id)
      in
      match (idle_inputs, idle_outputs) with
      | [], _ | _, [] -> ()
      | _ ->
          let input = List.nth idle_inputs (Rng.int rng (List.length idle_inputs)) in
          let output =
            List.nth idle_outputs (Rng.int rng (List.length idle_outputs))
          in
          ignore (request t ~input ~output)
    end
    else begin
      let live = live_calls t in
      match live with
      | [] -> ()
      | _ ->
          let input, _ = List.nth live (Rng.int rng (List.length live)) in
          hangup t ~input
    end
  done;
  stats t
