module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Traverse = Ftcsn_graph.Traverse

type outcome =
  | Routed of int list list
  | Unroutable
  | Budget_exceeded

exception Out_of_budget

let route_all ?(budget = 200_000) ?(allowed = fun _ -> true)
    ?(edge_ok = fun _ -> true) net requests =
  let g = net.Network.graph in
  let n = Digraph.vertex_count g in
  let busy = Array.make n false in
  let steps = ref 0 in
  let tick () =
    incr steps;
    if !steps > budget then raise Out_of_budget
  in
  let requests = Array.of_list requests in
  let k = Array.length requests in
  let acc = Array.make k [] in
  let terminal = Array.make n false in
  Array.iter (fun v -> terminal.(v) <- true) net.Network.inputs;
  Array.iter (fun v -> terminal.(v) <- true) net.Network.outputs;
  (* Depth-first over requests; for request r enumerate all simple paths
     src->dst through idle vertices, committing each in turn. *)
  let rec solve r =
    if r = k then true
    else begin
      let src, dst = requests.(r) in
      if busy.(src) || busy.(dst) || not (allowed src && allowed dst) then false
      else begin
        (* DFS path enumeration from src *)
        let rec extend v path =
          tick ();
          if v = dst then begin
            acc.(r) <- List.rev (v :: path);
            busy.(v) <- true;
            let solved = solve (r + 1) in
            if solved then true
            else begin
              busy.(v) <- false;
              false
            end
          end
          else
            Digraph.fold_out g v ~init:false ~f:(fun found ~dst:w ~eid ->
                found
                ||
                if
                  edge_ok eid
                  && (not busy.(w))
                  && allowed w
                  && (w = dst || not terminal.(w))
                then begin
                  busy.(w) <- true;
                  let solved = extend w (v :: path) in
                  if solved then true
                  else begin
                    busy.(w) <- false;
                    false
                  end
                end
                else false)
        in
        busy.(src) <- true;
        let solved = extend src [] in
        if not solved then busy.(src) <- false;
        solved
      end
    end
  in
  match solve 0 with
  | true -> Routed (Array.to_list acc)
  | false -> Unroutable
  | exception Out_of_budget -> Budget_exceeded

let count_paths ?(allowed = fun _ -> true) net ~src ~dst =
  let g = net.Network.graph in
  match Traverse.topological_order g with
  | None -> invalid_arg "Backtrack.count_paths: cyclic graph"
  | Some order ->
      let counts = Array.make (Digraph.vertex_count g) 0 in
      if allowed src then counts.(src) <- 1;
      Array.iter
        (fun v ->
          if counts.(v) > 0 && allowed v then
            Digraph.iter_out g v (fun ~dst:w ~eid:_ ->
                if allowed w then counts.(w) <- counts.(w) + counts.(v)))
        order;
      counts.(dst)
