(** Deciders for the three network classes of the paper (§2).

    A directed graph with n inputs and n outputs is
    - an {e n-superconcentrator} when every r inputs and r outputs are
      joined by r vertex-disjoint paths,
    - a {e rearrangeable n-network} when every one-to-one correspondence
      of inputs to outputs is realised by vertex-disjoint paths, and
    - a {e (strictly) nonblocking n-network} when, whatever vertex-disjoint
      paths are already established, every idle input/output pair can be
      joined by a path vertex-disjoint from them.

    Superconcentration is decided per request by max-flow (Menger);
    rearrangeability by exact backtracking (exhaustive over permutations
    for small n, sampled for large); strict nonblocking by an exhaustive
    game over reachable busy-sets for tiny networks and by online stress
    simulation otherwise.  Every [`Violated] answer carries a concrete
    witness; [`Holds] from a sampled checker is statistical evidence, not
    proof. *)

type sc_violation = {
  r : int;
  input_indices : int array;
  output_indices : int array;
  achieved : int;  (** max vertex-disjoint paths found, < r *)
}

val superconcentrator_exhaustive :
  ?max_work:int -> Ftcsn_networks.Network.t -> [ `Holds | `Violated of sc_violation | `Too_large ]
(** Check every r and every pair of r-subsets; [max_work] (default 2·10⁵)
    bounds the number of flow computations before giving up with
    [`Too_large]. *)

val superconcentrator_sampled :
  ?jobs:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  Ftcsn_networks.Network.t ->
  sc_violation option
(** Random (r, S, T) probes; [None] = no violation found.  Probes run on
    the {!Ftcsn_sim.Trials} engine (one substream per probe) and the
    lowest-indexed violation wins, so the answer is identical at every
    [jobs]. *)

val rearrangeable_exhaustive :
  ?budget:int -> Ftcsn_networks.Network.t ->
  [ `Holds | `Violated of Ftcsn_util.Perm.t | `Budget_exceeded ]
(** All n! permutations through the backtracking router; use for n ≤ 5. *)

val rearrangeable_sampled :
  ?jobs:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  ?budget:int ->
  Ftcsn_networks.Network.t ->
  Ftcsn_util.Perm.t option
(** Random permutations; [Some pi] is a permutation the exact router could
    not realise within budget.  Deterministically parallel like
    {!superconcentrator_sampled}. *)

type nb_violation = {
  established : int list list;  (** the blocking set of established paths *)
  input : int;  (** input vertex id of the unroutable request *)
  output : int;
}

val nonblocking_exhaustive :
  ?max_states:int -> Ftcsn_networks.Network.t ->
  [ `Holds | `Violated of nb_violation | `Budget_exceeded ]
(** Exhaustive game over all reachable sets of established paths (memoised
    on busy sets).  Exponential: use for tiny networks only.
    [max_states] (default 200_000) bounds visited states. *)

val nonblocking_stress :
  steps:int ->
  rng:Ftcsn_prng.Rng.t ->
  ?arrival_prob:float ->
  Ftcsn_networks.Network.t ->
  Session.stats
(** Online stress with randomised path choice; a strictly nonblocking
    network must report zero blocked calls. *)

val is_banyan : Ftcsn_networks.Network.t -> bool
(** Every input/output pair joined by exactly one path (e.g. butterfly). *)
