module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Menger = Ftcsn_flow.Menger
module Perm = Ftcsn_util.Perm
module Combinat = Ftcsn_util.Combinat
module Rng = Ftcsn_prng.Rng
module Bitset = Ftcsn_util.Bitset

type sc_violation = {
  r : int;
  input_indices : int array;
  output_indices : int array;
  achieved : int;
}

let sc_probe net ~input_indices ~output_indices =
  let sources = Array.map (fun i -> net.Network.inputs.(i)) input_indices in
  let sinks = Array.map (fun o -> net.Network.outputs.(o)) output_indices in
  Menger.max_vertex_disjoint net.Network.graph ~sources ~sinks

let superconcentrator_exhaustive ?(max_work = 200_000) net =
  let n = min (Network.n_inputs net) (Network.n_outputs net) in
  let total_work =
    let acc = ref 0.0 in
    for r = 1 to n do
      acc :=
        !acc
        +. (Combinat.binomial (Network.n_inputs net) r
           *. Combinat.binomial (Network.n_outputs net) r)
    done;
    !acc
  in
  if total_work > float_of_int max_work then `Too_large
  else begin
    let violation = ref None in
    (try
       for r = 1 to n do
         Combinat.iter_subsets ~n:(Network.n_inputs net) ~k:r (fun s ->
             let s = Array.copy s in
             Combinat.iter_subsets ~n:(Network.n_outputs net) ~k:r (fun t ->
                 let achieved = sc_probe net ~input_indices:s ~output_indices:t in
                 if achieved < r then begin
                   violation :=
                     Some
                       {
                         r;
                         input_indices = s;
                         output_indices = Array.copy t;
                         achieved;
                       };
                   raise Exit
                 end))
       done
     with Exit -> ());
    match !violation with None -> `Holds | Some v -> `Violated v
  end

let superconcentrator_sampled ?jobs ?trace ~trials ~rng net =
  let n_in = Network.n_inputs net and n_out = Network.n_outputs net in
  let n = min n_in n_out in
  Ftcsn_sim.Trials.search ?jobs ?trace ~label:"properties.sc_sampled"
    ~trials ~rng (fun sub ->
      let r = 1 + Rng.int sub n in
      let s = Rng.sample_without_replacement sub ~n:n_in ~k:r in
      let t_set = Rng.sample_without_replacement sub ~n:n_out ~k:r in
      let achieved = sc_probe net ~input_indices:s ~output_indices:t_set in
      if achieved < r then
        Some { r; input_indices = s; output_indices = t_set; achieved }
      else None)

let requests_of_perm net pi =
  Array.to_list
    (Array.mapi (fun i o -> (net.Network.inputs.(i), net.Network.outputs.(o))) pi)

let rearrangeable_exhaustive ?(budget = 500_000) net =
  let n = Network.n_inputs net in
  if n <> Network.n_outputs net then invalid_arg "Properties: asymmetric network";
  let result = ref `Holds in
  (try
     Perm.iter_all n (fun pi ->
         match Backtrack.route_all ~budget net (requests_of_perm net pi) with
         | Backtrack.Routed _ -> ()
         | Backtrack.Unroutable ->
             result := `Violated (Array.copy pi);
             raise Exit
         | Backtrack.Budget_exceeded ->
             result := `Budget_exceeded;
             raise Exit)
   with Exit -> ());
  !result

let rearrangeable_sampled ?jobs ?trace ~trials ~rng ?(budget = 500_000) net =
  let n = Network.n_inputs net in
  Ftcsn_sim.Trials.search ?jobs ?trace ~label:"properties.rearr_sampled"
    ~trials ~rng (fun sub ->
      let pi = Rng.permutation sub n in
      match Backtrack.route_all ~budget net (requests_of_perm net pi) with
      | Backtrack.Routed _ -> None
      | Backtrack.Unroutable | Backtrack.Budget_exceeded -> Some pi)

type nb_violation = {
  established : int list list;
  input : int;
  output : int;
}

exception Nb_violation of nb_violation
exception Nb_budget

(* Exhaustive nonblocking game: explore every reachable set of established
   vertex-disjoint paths (memoised on the busy set); in every state every
   idle input/output pair must admit an idle path. *)
let nonblocking_exhaustive ?(max_states = 200_000) net =
  let g = net.Network.graph in
  let n_v = Digraph.vertex_count g in
  let busy = Bitset.create n_v in
  let terminal = Array.make n_v false in
  Array.iter (fun v -> terminal.(v) <- true) net.Network.inputs;
  Array.iter (fun v -> terminal.(v) <- true) net.Network.outputs;
  let seen = Hashtbl.create 1024 in
  let visited = ref 0 in
  let key () = String.concat "," (List.map string_of_int (Bitset.to_list busy)) in
  (* enumerate all simple idle paths src -> dst, calling [f] on each *)
  let iter_paths ~src ~dst f =
    let rec extend v path =
      if v = dst then f (List.rev (v :: path))
      else
        Digraph.iter_out g v (fun ~dst:w ~eid:_ ->
            if
              (not (Bitset.mem busy w))
              && (w = dst || not terminal.(w))
              && not (List.mem w path)
            then begin
              Bitset.add busy w;
              extend w (v :: path);
              Bitset.remove busy w
            end)
    in
    extend src []
  in
  let idle v = not (Bitset.mem busy v) in
  let rec explore established =
    let k = key () in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      incr visited;
      if !visited > max_states then raise Nb_budget;
      (* every idle pair must be routable right now (BFS probe) *)
      let routable i o =
        Ftcsn_graph.Traverse.shortest_path
          ~allowed:(fun v -> idle v && not terminal.(v))
          g ~src:i ~dst:o
        <> None
      in
      Array.iter
        (fun i ->
          if idle i then
            Array.iter
              (fun o ->
                if idle o && not (routable i o) then
                  raise (Nb_violation { established; input = i; output = o }))
              net.Network.outputs)
        net.Network.inputs;
      (* branch: establish any path for any idle pair and recurse *)
      Array.iter
        (fun i ->
          if idle i then
            Array.iter
              (fun o ->
                if idle o then
                  iter_paths ~src:i ~dst:o (fun path ->
                      (* [iter_paths] marked internal vertices during
                         extension but unmarked them; re-mark the full path *)
                      List.iter (Bitset.add busy) path;
                      explore (path :: established);
                      List.iter (Bitset.remove busy) path))
              net.Network.outputs)
        net.Network.inputs
    end
  in
  match explore [] with
  | () -> `Holds
  | exception Nb_violation v -> `Violated v
  | exception Nb_budget -> `Budget_exceeded

let nonblocking_stress ~steps ~rng ?(arrival_prob = 0.6) net =
  let session =
    Session.create ~choice:(Session.Randomised (Rng.split rng)) net
  in
  Session.run_random_traffic session ~rng ~steps ~arrival_prob

let is_banyan net =
  Array.for_all
    (fun i ->
      Array.for_all
        (fun o ->
          Backtrack.count_paths net ~src:i ~dst:o = 1)
        net.Network.outputs)
    net.Network.inputs
