(** Online circuit-switching sessions: calls arrive and depart over time.

    This is the operational meaning of "nonblocking" (paper, §2): given
    any set of established vertex-disjoint calls, a new request between
    idle terminals must be servable.  The simulator drives a network
    through random arrival/departure traffic — with either cooperative
    (shortest-path) or randomised path choice, the latter standing in for
    the adversary in stress tests — and records every blocking event.

    Path finding delegates to the {!Greedy} router (this module is a thin
    call-table and counter layer over it); the continuous-time analogue
    with holding times, failures and steady-state estimates lives in
    [Ftcsn_des.Traffic]. *)

type path_choice =
  | Shortest  (** deterministic BFS path *)
  | Randomised of Ftcsn_prng.Rng.t
      (** BFS with randomly shuffled tie-breaking: samples among (near-)
          shortest paths, adversary-ish for stress testing *)

type stats = {
  offered : int;  (** requests attempted *)
  served : int;
  blocked : int;
  released : int;
  max_concurrent : int;
}

type t

val create : ?allowed:(int -> bool) -> choice:path_choice -> Ftcsn_networks.Network.t -> t

val request : t -> input:int -> output:int -> int list option
(** Terminals given by index.  [None] (and a recorded blocking event) if
    no idle path exists.
    @raise Invalid_argument if either terminal is busy with another call. *)

val hangup : t -> input:int -> unit
(** Release the call established from input index [input].
    @raise Not_found when that input has no live call. *)

val live_calls : t -> (int * int) list
(** (input index, output index) pairs currently established. *)

val stats : t -> stats

val run_random_traffic :
  t -> rng:Ftcsn_prng.Rng.t -> steps:int -> arrival_prob:float -> stats
(** Drive the session: each step, with [arrival_prob] pick a random idle
    input/output pair and request it, otherwise hang up a random live
    call.  Returns cumulative stats. *)
