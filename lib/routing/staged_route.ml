module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Staged = Ftcsn_graph.Staged
module Traverse = Ftcsn_graph.Traverse

type t = {
  g : Digraph.t;
  level : int array;
  stages : int;
  (* forward search state (epoch-stamped; cursors are mutable fields so a
     route call allocates zero minor words) *)
  fpar : int array;
  fstamp : int array;
  fqueue : int array;
  (* backward search state *)
  bpar : int array;
  bstamp : int array;
  bqueue : int array;
  mutable gen : int;
  mutable fhead : int;
  mutable ftail : int;
  mutable bhead : int;
  mutable btail : int;
  mutable meet : int;
  mutable scan : int;
}

let create net =
  let g = net.Network.graph in
  match Traverse.topological_order g with
  | None -> None
  | Some _ ->
      let sources = Array.to_list net.Network.inputs in
      let st = Staged.of_sources g ~sources in
      if not (Staged.is_strictly_staged g st) then None
      else begin
        let n = Digraph.vertex_count g in
        Some
          {
            g;
            level = st.Staged.stage;
            stages = st.Staged.stages;
            fpar = Array.make n 0;
            fstamp = Array.make n 0;
            fqueue = Array.make n 0;
            bpar = Array.make n 0;
            bstamp = Array.make n 0;
            bqueue = Array.make n 0;
            gen = 0;
            fhead = 0;
            ftail = 0;
            bhead = 0;
            btail = 0;
            meet = -1;
            scan = 0;
          }
      end

let stages t = t.stages

let level t v = t.level.(v)

(* In a strictly staged graph every edge climbs exactly one level, so any
   src→dst path has length [level dst - level src] and crosses the meet
   level [lm] exactly once.  The forward frontier therefore only needs
   levels [level src .. lm] and the backward frontier (over in-edges)
   only [lm .. level dst]; a path exists iff some level-[lm] vertex is
   reached by both — completeness of both bounded searches makes the
   block/accept decision exact, not heuristic.  On a depth-d Beneš each
   side touches O(2^(d/2)) vertices instead of the O(E) a full BFS
   scans. *)
let route_into t ~allowed ~edge_ok ~src ~dst ~buf =
  let n = Array.length t.level in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Staged_route.route_into: vertex out of range";
  if Array.length buf < n then
    invalid_arg "Staged_route.route_into: buffer too small";
  if src = dst then begin
    buf.(0) <- src;
    1
  end
  else begin
    let ls = t.level.(src) and ld = t.level.(dst) in
    (* an unleveled vertex is isolated (strict stagedness levels every
       edge endpoint), and a non-increasing level pair admits no path *)
    if ls < 0 || ld <= ls then -1
    else begin
      let d = ld - ls in
      let lm = ls + (d / 2) in
      t.gen <- t.gen + 1;
      let gen = t.gen in
      let level = t.level in
      let out_off = Digraph.Csr.out_off t.g
      and out_dst = Digraph.Csr.out_dst t.g
      and out_eid = Digraph.Csr.out_eid t.g in
      (* forward sweep over levels [ls, lm]; the FIFO dequeues in level
         order because every expansion climbs exactly one level *)
      t.fstamp.(src) <- gen;
      t.fqueue.(0) <- src;
      t.fhead <- 0;
      t.ftail <- 1;
      while t.fhead < t.ftail do
        let u = t.fqueue.(t.fhead) in
        t.fhead <- t.fhead + 1;
        if level.(u) < lm then
          for i = out_off.(u) to out_off.(u + 1) - 1 do
            let v = out_dst.(i) in
            if edge_ok out_eid.(i) && t.fstamp.(v) <> gen && allowed v
            then begin
              t.fstamp.(v) <- gen;
              t.fpar.(v) <- u;
              t.fqueue.(t.ftail) <- v;
              t.ftail <- t.ftail + 1
            end
          done
      done;
      (* backward sweep over levels [lm, ld], expanding in-edges *)
      let in_off = Digraph.Csr.in_off t.g
      and in_src = Digraph.Csr.in_src t.g
      and in_eid = Digraph.Csr.in_eid t.g in
      t.bstamp.(dst) <- gen;
      t.bqueue.(0) <- dst;
      t.bhead <- 0;
      t.btail <- 1;
      while t.bhead < t.btail do
        let w = t.bqueue.(t.bhead) in
        t.bhead <- t.bhead + 1;
        if level.(w) > lm then
          for i = in_off.(w) to in_off.(w + 1) - 1 do
            let v = in_src.(i) in
            if
              edge_ok in_eid.(i)
              && t.bstamp.(v) <> gen
              && (v = src || allowed v)
            then begin
              t.bstamp.(v) <- gen;
              t.bpar.(v) <- w;
              t.bqueue.(t.btail) <- v;
              t.btail <- t.btail + 1
            end
          done
      done;
      (* meet: first forward-discovered level-lm vertex the backward
         sweep also reached (deterministic, but a different tie-break
         than plain BFS — which is why the DES default policy keeps the
         CSR-order BFS and this router is opt-in) *)
      t.meet <- -1;
      t.scan <- 0;
      while t.meet < 0 && t.scan < t.ftail do
        let v = t.fqueue.(t.scan) in
        t.scan <- t.scan + 1;
        if level.(v) = lm && t.bstamp.(v) = gen then t.meet <- v
      done;
      if t.meet < 0 then -1
      else begin
        (* [buf] doubles as the walk state: parents go down-level from
           the meet to position 0 (= src), backward-parents go up-level
           to position d (= dst) *)
        let d1 = lm - ls in
        buf.(d1) <- t.meet;
        t.scan <- d1;
        while t.scan > 0 do
          buf.(t.scan - 1) <- t.fpar.(buf.(t.scan));
          t.scan <- t.scan - 1
        done;
        t.scan <- d1;
        while t.scan < d do
          buf.(t.scan + 1) <- t.bpar.(buf.(t.scan));
          t.scan <- t.scan + 1
        done;
        d + 1
      end
    end
  end
