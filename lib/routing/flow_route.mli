(** Batch routing for superconcentrator-style requests.

    A superconcentrator request (paper, §2) names a set of r inputs and a
    set of r outputs but leaves the pairing free, so — unlike specified
    pairings — it is exactly solvable by max-flow (Menger).  Used by the
    task-queue example [Co] and by the property deciders. *)

val connect :
  ?forbidden:(int -> bool) ->
  Ftcsn_networks.Network.t ->
  input_indices:int array ->
  output_indices:int array ->
  int list list option
(** Vertex-disjoint paths joining the chosen r inputs (by index) to the
    chosen r outputs in some order; [None] if fewer than r disjoint paths
    exist.  @raise Invalid_argument when the index sets differ in size. *)

val max_throughput :
  ?forbidden:(int -> bool) ->
  Ftcsn_networks.Network.t ->
  input_indices:int array ->
  output_indices:int array ->
  int
(** Largest number of vertex-disjoint paths between the chosen sets. *)

type ws
(** A prebuilt {!Ftcsn_flow.Menger.Workspace} flow arena over one
    network, reused across throughput queries (single-domain state). *)

val create_ws : Ftcsn_networks.Network.t -> ws

val max_throughput_ws :
  ?forbidden:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  ws ->
  input_indices:int array ->
  output_indices:int array ->
  int
(** {!max_throughput} without per-call construction: same value as the
    allocating variant on the graph restricted to [edge_ok] edges and
    non-[forbidden] vertices. *)

val max_throughput_cert_ws :
  ?forbidden:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  ws ->
  input_indices:int array ->
  output_indices:int array ->
  used_vertices:int array ->
  used_edges:int array ->
  int * int * int
(** {!max_throughput_ws} that also extracts the disjoint-path
    certificate (see {!Ftcsn_flow.Menger.Workspace.max_vertex_disjoint_cert}):
    the vertices and edge ids carrying flow are written to the prefixes
    of [used_vertices] / [used_edges] (size ≥ the graph's vertex count)
    and the result is [(value, used_vertex_count, used_edge_count)].
    While every recorded vertex and edge stays unmasked, a repeat query
    with the same index sets provably returns the same full value —
    CRN ε-sweeps use this to skip re-probing between nearby grid
    points. *)
