(** Exact routing of request sets by backtracking search.

    Routing a {e specified} pairing with vertex-disjoint paths is NP-hard
    in general graphs, so the exact rearrangeability checker (paper §2
    definition: every permutation routable) uses exhaustive backtracking
    over per-request path choices with an explicit work budget.  Intended
    for small networks; large ones are handled statistically via
    {!Greedy} and {!Flow_route}. *)

type outcome =
  | Routed of int list list  (** paths in request order *)
  | Unroutable
  | Budget_exceeded

val route_all :
  ?budget:int ->
  ?allowed:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  Ftcsn_networks.Network.t ->
  (int * int) list ->
  outcome
(** Vertex-disjoint paths realising every (input vertex, output vertex)
    request simultaneously.  [budget] (default 200_000) bounds the number
    of search-tree node expansions.  [allowed]/[edge_ok] restrict the
    usable vertices/edges; because adjacency lists keep ascending edge-id
    order, searching a masked graph expands exactly the nodes the
    corresponding subgraph search would, so outcomes (including budget
    exhaustion) are identical.  Paths never pass {e through} a terminal
    vertex (in the paper's staged networks terminals have no
    through-edges anyway). *)

val count_paths : ?allowed:(int -> bool) -> Ftcsn_networks.Network.t -> src:int -> dst:int -> int
(** Number of directed simple paths src→dst (DAG assumed: counted by
    dynamic programming over a topological order). *)
