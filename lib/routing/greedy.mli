(** Greedy path-finding for strictly nonblocking operation.

    The paper (§4) notes that in its construction "routing can be performed
    by a greedy application of a standard path-finding algorithm": to
    serve a request, BFS from the input through idle (non-busy, non-faulty)
    vertices to the output, then mark the path busy.  This module is that
    algorithm over an explicit busy mask. *)

type t

type engine = [ `Bfs | `Staged | `Loop ]
(** The deterministic search behind {!route}/{!route_into}:
    - [`Bfs] (default) — CSR-order BFS on an epoch-stamped
      {!Ftcsn_graph.Arena}; works on any graph and returns exactly the
      paths the historical implementation did (the DES's bit-identity
      anchor).
    - [`Staged] — {!Staged_route}'s level-bounded bidirectional BFS,
      O(depth × frontier) on strictly staged families; falls back to
      [`Bfs] when the network is not strictly staged.
    - [`Loop] — {!Loop_route}'s Beneš block-tree descent, O(depth) on the
      fault-free fast path; falls back to [`Staged] (then [`Bfs]) off the
      Beneš family.

    All three agree exactly on accept vs. blocked; the fast engines may
    pick a {e different equal-length path} among ties, which is why they
    are opt-in. *)

val create :
  ?allowed:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  ?rng:Ftcsn_prng.Rng.t ->
  ?engine:engine ->
  Ftcsn_networks.Network.t ->
  t
(** Fresh routing state; [allowed] excludes vertices globally (e.g. the
    fault-stripped set), [edge_ok] excludes edges (e.g. failed switches),
    so routing a surviving network needs no subgraph rebuild.  With [rng],
    the BFS shuffles each vertex's expansion order so every {!route} call
    samples uniformly among the tie-breaks (near-shortest paths) — the
    adversary-ish path choice of the stress tests; without it, paths come
    from the deterministic [engine].  The router's searches run on
    internal epoch-stamped scratch: after creation, {!route_into}
    allocates nothing at all, and {!route} allocates only the returned
    path (plus the per-expansion shuffle buffers when [rng] is set). *)

val network : t -> Ftcsn_networks.Network.t

val engine_name : t -> string
(** Which engine actually engaged after fallback resolution: ["bfs"],
    ["staged"] or ["loop"] — surfaced by [ftnet traffic] as its
    [router] field. *)

val busy : t -> int -> bool

val route : t -> input:int -> output:int -> int list option
(** Find a path of idle allowed vertices from terminal [input] to terminal
    [output] (vertex ids), mark it busy, and return it.  [None] when
    blocked; state unchanged in that case.
    @raise Invalid_argument if either endpoint is already busy. *)

val release : t -> int list -> unit
(** Un-busy a previously routed path. *)

val occupy : t -> int list -> unit
(** Mark a path busy without routing it — the adoption hook for
    externally computed layouts (e.g. a backtracking re-lay migrating
    every live call at once). *)

val route_into : t -> input:int -> output:int -> buf:int array -> int
(** Allocation-free {!route}: the path vertices are written into
    [buf.(0 .. len-1)] (caller-owned, length at least the vertex count),
    marked busy, and the length returned; [-1] when blocked (state
    unchanged).  Deterministic routers only — the path is exactly what
    {!route} would return.
    @raise Invalid_argument if an endpoint is busy or the router was
    created with [~rng]. *)

val release_buf : t -> int array -> len:int -> unit
(** Un-busy the path in [buf.(0 .. len-1)]. *)

val occupy_buf : t -> int array -> len:int -> unit
(** Mark the path in [buf.(0 .. len-1)] busy without routing. *)

val route_many : t -> (int * int) list -> (int * int * int list option) list
(** Route requests in order; each result keeps its request. *)

val route_permutation :
  t -> Ftcsn_util.Perm.t -> success:int ref -> int list option array
(** Route input i → output π(i) for all i in order, greedily (no
    backtracking); [success] counts the requests served. *)

val clear : t -> unit
