module Network = Ftcsn_networks.Network
module Benes = Ftcsn_networks.Benes
module Digraph = Ftcsn_graph.Digraph

type t = {
  g : Digraph.t;
  root : Benes.node;
  in_idx : int array;  (* vertex -> input index, -1 elsewhere *)
  out_idx : int array;  (* vertex -> output index, -1 elsewhere *)
  plen : int;  (* every input->output path has 2 log2 n vertices *)
  budget : int;  (* descent node-visit cap before falling back *)
  staged : Staged_route.t;  (* exact fallback inside faulted blocks *)
  mutable budget_left : int;
}

(* raised by the descent when the visit cap runs out; constant, so the
   raise itself allocates nothing *)
exception Budget_exhausted

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let same_structure net reference =
  let g = net.Network.graph and r = reference.Network.graph in
  Digraph.vertex_count g = Digraph.vertex_count r
  && Digraph.edge_count g = Digraph.edge_count r
  && (let ok = ref true in
      let m = Digraph.edge_count g in
      for e = 0 to m - 1 do
        if
          Digraph.edge_src g e <> Digraph.edge_src r e
          || Digraph.edge_dst g e <> Digraph.edge_dst r e
        then ok := false
      done;
      !ok)
  && net.Network.inputs = reference.Network.inputs
  && net.Network.outputs = reference.Network.outputs

let create net =
  let n = Network.n_inputs net in
  if
    net.Network.name <> Printf.sprintf "benes-%d" n
    || n < 2
    || n land (n - 1) <> 0
  then None
  else begin
    (* the name is only a hint: rebuild the canonical Benes and require
       identical vertex numbering, edge list, and terminal arrays, so the
       block tree below provably describes this graph *)
    let reference = Benes.make n in
    if not (same_structure net (Benes.network reference)) then None
    else
      match Staged_route.create net with
      | None -> None
      | Some staged ->
          let nv = Digraph.vertex_count net.Network.graph in
          let in_idx = Array.make nv (-1) and out_idx = Array.make nv (-1) in
          Array.iteri (fun i v -> in_idx.(v) <- i) net.Network.inputs;
          Array.iteri (fun i v -> out_idx.(v) <- i) net.Network.outputs;
          Some
            {
              g = net.Network.graph;
              root = Benes.root reference;
              in_idx;
              out_idx;
              plen = 2 * log2 n;
              budget = 16 * ((2 * log2 n) - 1);
              staged;
              budget_left = 0;
            }
  end

let path_length t = t.plen

(* is there a live u -> v switch?  CSR scan of u's out-slots; Benes has no
   parallel edges but scanning all slots keeps this correct regardless *)
let rec live_edge_from out_dst out_eid edge_ok v i stop =
  i < stop
  && ((out_dst.(i) = v && edge_ok out_eid.(i))
     || live_edge_from out_dst out_eid edge_ok v (i + 1) stop)

(* Descend the block tree.  A request entering a Split at wire [r] bound
   for wire [o] has exactly two continuations — via the top or the bottom
   subnetwork — because entry switch r/2 only reaches top_in.(r/2) and
   bot_in.(r/2), and a sub-route cannot change halves.  Trying both
   therefore enumerates every i->o path in the graph: exhaustive failure
   is a true block, no search needed.  Each level writes its own two wire
   vertices at [lo]/[hi] and checks the two half-entry/exit vertices and
   the three wire switches it introduces; deeper vertices are checked as
   the recursion's own endpoints.  All helpers are top-level functions
   over ints and pre-built closures, so the descent allocates nothing. *)
let rec try_node t ~allowed ~edge_ok out_off out_dst out_eid node r o lo hi buf
    =
  t.budget_left <- t.budget_left - 1;
  if t.budget_left < 0 then raise Budget_exhausted;
  match node with
  | Benes.Switch { ins; outs } ->
      let u = ins.(r) and w = outs.(o) in
      buf.(lo) <- u;
      buf.(hi) <- w;
      live_edge_from out_dst out_eid edge_ok w out_off.(u) out_off.(u + 1)
  | Benes.Split { ins; outs; top_in; bot_in; top_out; bot_out; top; bot } ->
      let u = ins.(r) and w = outs.(o) in
      buf.(lo) <- u;
      buf.(hi) <- w;
      try_half t ~allowed ~edge_ok out_off out_dst out_eid top_in top_out top
        u w r o lo hi buf
      || try_half t ~allowed ~edge_ok out_off out_dst out_eid bot_in bot_out
           bot u w r o lo hi buf

and try_half t ~allowed ~edge_ok out_off out_dst out_eid h_in h_out sub u w r
    o lo hi buf =
  let hin = h_in.(r / 2) and hout = h_out.(o / 2) in
  allowed hin && allowed hout
  && live_edge_from out_dst out_eid edge_ok hin out_off.(u) out_off.(u + 1)
  && live_edge_from out_dst out_eid edge_ok w out_off.(hout)
       out_off.(hout + 1)
  && try_node t ~allowed ~edge_ok out_off out_dst out_eid sub (r / 2) (o / 2)
       (lo + 1) (hi - 1) buf

let route_into t ~allowed ~edge_ok ~src ~dst ~buf =
  let nv = Array.length t.in_idx in
  if src < 0 || src >= nv || dst < 0 || dst >= nv then
    invalid_arg "Loop_route.route_into: vertex out of range";
  if Array.length buf < max t.plen 1 then
    invalid_arg "Loop_route.route_into: buffer too small";
  if src = dst then begin
    buf.(0) <- src;
    1
  end
  else begin
    let r = t.in_idx.(src) and o = t.out_idx.(dst) in
    if r < 0 || o < 0 then
      (* not an input->output request: the block tree says nothing, so
         answer with the exact staged search *)
      Staged_route.route_into t.staged ~allowed ~edge_ok ~src ~dst ~buf
    else begin
      t.budget_left <- t.budget;
      match
        try_node t ~allowed ~edge_ok
          (Digraph.Csr.out_off t.g)
          (Digraph.Csr.out_dst t.g)
          (Digraph.Csr.out_eid t.g)
          t.root r o 0 (t.plen - 1) buf
      with
      | true -> t.plen
      | false -> -1
      | exception Budget_exhausted ->
          Staged_route.route_into t.staged ~allowed ~edge_ok ~src ~dst ~buf
    end
  end
