(** Level-bounded bidirectional BFS for strictly staged networks.

    The paper's constructions are leveled multistage graphs: every edge
    joins consecutive stages, so every input→output path has the same
    length and crosses each level exactly once.  Routing a single request
    therefore does not need to scan the whole masked CSR (the O(E)
    per-call cost of {!Greedy}'s plain BFS at million-switch sizes): a
    forward frontier from the source expanding only into the next stage
    and a backward frontier from the destination expanding only into the
    previous stage meet in the middle after O(depth × frontier) work —
    on a depth-d Beneš each side touches O(2^(d/2)) vertices where the
    flat BFS visits a constant fraction of the graph plus an O(V) scratch
    refill.

    Both bounded sweeps are exhaustive within their level ranges, so the
    accept/block decision is exactly that of a full BFS over the same
    masks, and the returned path has minimum length (all paths do, in a
    strictly staged graph).  The {e tie-break} among equal-length paths
    differs from CSR-order BFS, which is why the DES keeps plain BFS for
    its bit-identity-pinned default policy and engages this router behind
    the opt-in [Route_staged]/[Route_loop] policies.

    Scratch is epoch-stamped ({!Ftcsn_graph.Arena} style): a route call
    touches only visited vertices and allocates zero minor words. *)

type t

val create : Ftcsn_networks.Network.t -> t option
(** Stage the network from its inputs and build the router, or [None]
    when the graph is cyclic or not strictly staged (callers then fall
    back to plain BFS — the graceful-degradation contract). *)

val stages : t -> int

val level : t -> int -> int
(** Stage of a vertex; [-1] for (isolated) unleveled vertices. *)

val route_into :
  t ->
  allowed:(int -> bool) ->
  edge_ok:(int -> bool) ->
  src:int ->
  dst:int ->
  buf:int array ->
  int
(** Shortest [src → dst] path over the masks, written into
    [buf.(0 .. len-1)] with its length returned; [-1] when blocked —
    exactly when a full BFS over the same masks would block.  [allowed]
    gates interior vertices ([src]/[dst] are exempt, matching
    {!Ftcsn_graph.Traverse.shortest_path_into_buf}); [edge_ok] gates
    edges.  Allocates nothing.
    @raise Invalid_argument on out-of-range vertices or a short buffer. *)
