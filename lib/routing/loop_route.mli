(** Structure-aware single-request routing on Beneš networks.

    {!Ftcsn_networks.Benes.route} runs the looping algorithm on whole
    permutations; the DES routes one call at a time.  This router applies
    the same idea per request: at each [Split] of the recursive block
    tree a request has exactly two continuations — through the top or the
    bottom subnetwork — so assigning halves by descending the tree visits
    O(log n) blocks on the fault-free fast path instead of searching the
    flat graph.  The two-way descent enumerates {e every} input→output
    path, so exhaustive failure is a genuine block; a visit budget
    (O(depth) nodes) caps pathological fault patterns, after which the
    router falls back to the exact {!Staged_route} search — accept/block
    decisions always match the full-BFS oracle.

    Like {!Staged_route}, a route call allocates zero minor words; it is
    the [Route_loop] DES policy and the [--policy loop] CLI spelling. *)

type t

val create : Ftcsn_networks.Network.t -> t option
(** [Some] only for the canonical Beneš family: the name must be
    [benes-N], and the graph is validated edge-for-edge against a fresh
    {!Ftcsn_networks.Benes.make} (O(n log n), once) so the block tree is
    guaranteed to describe it.  Anything else gets [None] and callers
    fall back to {!Staged_route} or plain BFS. *)

val path_length : t -> int
(** Vertices on every input→output path: [2 log2 n]. *)

val route_into :
  t ->
  allowed:(int -> bool) ->
  edge_ok:(int -> bool) ->
  src:int ->
  dst:int ->
  buf:int array ->
  int
(** Same contract as {!Staged_route.route_into}: path into
    [buf.(0 .. len-1)], length returned, [-1] iff a full BFS over the
    same masks would block.  Requests whose endpoints are not an
    input/output pair are answered by the staged fallback.
    @raise Invalid_argument on out-of-range vertices or a short buffer. *)
