module Network = Ftcsn_networks.Network
module Menger = Ftcsn_flow.Menger

let resolve net ~input_indices ~output_indices =
  ( Array.map (fun i -> net.Network.inputs.(i)) input_indices,
    Array.map (fun o -> net.Network.outputs.(o)) output_indices )

let connect ?forbidden net ~input_indices ~output_indices =
  if Array.length input_indices <> Array.length output_indices then
    invalid_arg "Flow_route.connect: arity";
  let sources, sinks = resolve net ~input_indices ~output_indices in
  let paths =
    Menger.vertex_disjoint_paths ?forbidden net.Network.graph ~sources ~sinks
  in
  if List.length paths = Array.length input_indices then Some paths else None

let max_throughput ?forbidden net ~input_indices ~output_indices =
  let sources, sinks = resolve net ~input_indices ~output_indices in
  Menger.max_vertex_disjoint ?forbidden net.Network.graph ~sources ~sinks

(* Workspace path: one Menger arena per network, re-armed per query.
   Input/output indices address the network's terminal arrays directly,
   which are exactly the arena's source/sink universes, so no vertex
   resolution (and no allocation) happens per call. *)
type ws = Menger.Workspace.t

let create_ws net =
  Menger.Workspace.create net.Network.graph ~sources:net.Network.inputs
    ~sinks:net.Network.outputs

let max_throughput_ws ?forbidden ?edge_ok ws ~input_indices ~output_indices =
  Menger.Workspace.max_vertex_disjoint ?forbidden ?edge_ok ws
    ~source_slots:input_indices ~sink_slots:output_indices

let max_throughput_cert_ws ?forbidden ?edge_ok ws ~input_indices
    ~output_indices ~used_vertices ~used_edges =
  Menger.Workspace.max_vertex_disjoint_cert ?forbidden ?edge_ok ws
    ~source_slots:input_indices ~sink_slots:output_indices ~used_vertices
    ~used_edges
