module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Arena = Ftcsn_graph.Arena
module Traverse = Ftcsn_graph.Traverse
module Bitset = Ftcsn_util.Bitset
module Rng = Ftcsn_prng.Rng
module Metrics = Ftcsn_obs.Metrics
module Counter = Ftcsn_obs.Counter

(* searches issued by every router in the process; lets the alloc test
   prove the hot path ran without adding state to [t] *)
let c_search = Metrics.counter Metrics.default "greedy.search"

type engine = [ `Bfs | `Staged | `Loop ]

type fast =
  | No_fast
  | Fast_staged of Staged_route.t
  | Fast_loop of Loop_route.t

type t = {
  net : Network.t;
  allowed : int -> bool;
  edge_ok : int -> bool;
  rng : Rng.t option;
  busy_set : Bitset.t;
  (* epoch-stamped BFS scratch: starting a search is a generation bump,
     not an O(V) refill *)
  arena : Arena.t;
  (* [route]'s list result is built from this internal buffer *)
  path_buf : int array;
  (* prebuilt idle-vertex predicate; per-call [let ok v = ...] closures
     would allocate on every route *)
  ok : int -> bool;
  fast : fast;
}

let create ?(allowed = fun _ -> true) ?(edge_ok = fun _ -> true) ?rng
    ?(engine = `Bfs) net =
  let n = Digraph.vertex_count net.Network.graph in
  let busy_set = Bitset.create n in
  let ok v = allowed v && not (Bitset.mem busy_set v) in
  let fast =
    match engine with
    | `Bfs -> No_fast
    | `Staged -> (
        match Staged_route.create net with
        | Some s -> Fast_staged s
        | None -> No_fast)
    | `Loop -> (
        match Loop_route.create net with
        | Some l -> Fast_loop l
        | None -> (
            match Staged_route.create net with
            | Some s -> Fast_staged s
            | None -> No_fast))
  in
  {
    net;
    allowed;
    edge_ok;
    rng;
    busy_set;
    arena = Arena.create n;
    path_buf = Array.make n 0;
    ok;
    fast;
  }

let network t = t.net

let engine_name t =
  match t.fast with
  | No_fast -> "bfs"
  | Fast_staged _ -> "staged"
  | Fast_loop _ -> "loop"

let busy t v = Bitset.mem t.busy_set v

(* the deterministic search behind [route]/[route_into]: plain CSR-order
   BFS on the arena (path-identical to [Traverse.shortest_path_into]), or
   the structure-aware engine when one engaged at [create] *)
let search t ~src ~dst ~buf =
  Counter.incr c_search;
  match t.fast with
  | No_fast ->
      Traverse.shortest_path_arena_buf ~allowed:t.ok ~edge_ok:t.edge_ok
        t.net.Network.graph ~arena:t.arena ~src ~dst ~buf
  | Fast_staged s ->
      Staged_route.route_into s ~allowed:t.ok ~edge_ok:t.edge_ok ~src ~dst
        ~buf
  | Fast_loop l ->
      Loop_route.route_into l ~allowed:t.ok ~edge_ok:t.edge_ok ~src ~dst ~buf

(* BFS with shuffled expansion order: each dequeued vertex's edge_ok
   out-neighbours are collected in CSR order and shuffled, so the parent
   choice among equal-distance vertices — and hence the returned path —
   is sampled uniformly among the tie-breaks.  Visit discipline otherwise
   matches [Traverse.shortest_path_into] exactly (here in the stamp
   encoding: "seen" was [v = src || parent.(v) >= 0], now it is
   [stamp.(v) = gen] with the source pre-stamped). *)
let route_shuffled t rng ~src ~dst =
  let g = t.net.Network.graph in
  if src = dst then Some [ src ]
  else begin
    Counter.incr c_search;
    let a = t.arena in
    let gen = Arena.next_generation a in
    let stamp = a.Arena.stamp
    and parent = a.Arena.parent
    and queue = a.Arena.queue in
    stamp.(src) <- gen;
    queue.(0) <- src;
    a.Arena.head <- 0;
    a.Arena.tail <- 1;
    let found = ref false in
    while (not !found) && a.Arena.head < a.Arena.tail do
      let u = queue.(a.Arena.head) in
      a.Arena.head <- a.Arena.head + 1;
      let nbrs = Array.make (Digraph.out_degree g u) (-1) in
      let k = ref 0 in
      Digraph.iter_out g u (fun ~dst:v ~eid ->
          if t.edge_ok eid then begin
            nbrs.(!k) <- v;
            incr k
          end);
      let nbrs =
        if !k = Array.length nbrs then nbrs else Array.sub nbrs 0 !k
      in
      Rng.shuffle_in_place rng nbrs;
      Array.iter
        (fun v ->
          if (not !found) && stamp.(v) <> gen && (v = dst || t.ok v) then begin
            stamp.(v) <- gen;
            parent.(v) <- u;
            if v = dst then found := true
            else begin
              queue.(a.Arena.tail) <- v;
              a.Arena.tail <- a.Arena.tail + 1
            end
          end)
        nbrs
    done;
    if not !found then None
    else begin
      let rec walk v acc =
        if v = src then v :: acc else walk parent.(v) (v :: acc)
      in
      Some (walk dst [])
    end
  end

let route t ~input ~output =
  if busy t input || busy t output then
    invalid_arg "Greedy.route: endpoint already busy";
  if not (t.ok input && t.ok output) then None
  else begin
    let path =
      match t.rng with
      | None ->
          let len = search t ~src:input ~dst:output ~buf:t.path_buf in
          if len < 0 then None
          else begin
            let rec take i acc =
              if i < 0 then acc else take (i - 1) (t.path_buf.(i) :: acc)
            in
            Some (take (len - 1) [])
          end
      | Some rng -> route_shuffled t rng ~src:input ~dst:output
    in
    (match path with
    | Some p -> List.iter (Bitset.add t.busy_set) p
    | None -> ());
    path
  end

let release t path = List.iter (Bitset.remove t.busy_set) path

let occupy t path = List.iter (Bitset.add t.busy_set) path

(* Buffer variants of route/release/occupy: the DES call path routes into
   caller-owned arrays so a steady-state simulation makes no per-call
   allocations — the test suite asserts a zero [Gc.minor_words] delta
   over a routing loop.  The default deterministic BFS shares its visit
   discipline with [Traverse.shortest_path_into], so [route_into] yields
   exactly the path [route] would have returned as a list. *)
let route_into t ~input ~output ~buf =
  (match t.rng with
  | Some _ -> invalid_arg "Greedy.route_into: not available on a shuffled router"
  | None -> ());
  if busy t input || busy t output then
    invalid_arg "Greedy.route_into: endpoint already busy";
  if not (t.ok input && t.ok output) then -1
  else begin
    let len = search t ~src:input ~dst:output ~buf in
    for i = 0 to len - 1 do
      Bitset.add t.busy_set buf.(i)
    done;
    len
  end

let release_buf t buf ~len =
  for i = 0 to len - 1 do
    Bitset.remove t.busy_set buf.(i)
  done

let occupy_buf t buf ~len =
  for i = 0 to len - 1 do
    Bitset.add t.busy_set buf.(i)
  done

let route_many t requests =
  List.map (fun (i, o) -> (i, o, route t ~input:i ~output:o)) requests

let route_permutation t pi ~success =
  let inputs = t.net.Network.inputs and outputs = t.net.Network.outputs in
  Array.init (Array.length pi) (fun i ->
      match route t ~input:inputs.(i) ~output:outputs.(pi.(i)) with
      | Some p ->
          incr success;
          Some p
      | None -> None)

let clear t = Bitset.clear t.busy_set
