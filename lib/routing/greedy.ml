module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Traverse = Ftcsn_graph.Traverse
module Bitset = Ftcsn_util.Bitset
module Rng = Ftcsn_prng.Rng

type t = {
  net : Network.t;
  allowed : int -> bool;
  edge_ok : int -> bool;
  rng : Rng.t option;
  busy_set : Bitset.t;
  (* BFS scratch, so repeated routing calls don't allocate *)
  parent : int array;
  queue : int array;
}

let create ?(allowed = fun _ -> true) ?(edge_ok = fun _ -> true) ?rng net =
  let n = Digraph.vertex_count net.Network.graph in
  {
    net;
    allowed;
    edge_ok;
    rng;
    busy_set = Bitset.create n;
    parent = Array.make n (-1);
    queue = Array.make n 0;
  }

let network t = t.net

let busy t v = Bitset.mem t.busy_set v

(* BFS with shuffled expansion order: each dequeued vertex's edge_ok
   out-neighbours are collected in CSR order and shuffled, so the parent
   choice among equal-distance vertices — and hence the returned path —
   is sampled uniformly among the tie-breaks.  Visit discipline otherwise
   matches [Traverse.shortest_path_into] exactly. *)
let route_shuffled t rng ~src ~dst =
  let g = t.net.Network.graph in
  let n = Digraph.vertex_count g in
  let ok v = t.allowed v && not (Bitset.mem t.busy_set v) in
  if src = dst then Some [ src ]
  else begin
    Array.fill t.parent 0 n (-1);
    let head = ref 0 and tail = ref 0 in
    t.queue.(!tail) <- src;
    incr tail;
    let found = ref false in
    while (not !found) && !head < !tail do
      let u = t.queue.(!head) in
      incr head;
      let nbrs = Array.make (Digraph.out_degree g u) (-1) in
      let k = ref 0 in
      Digraph.iter_out g u (fun ~dst:v ~eid ->
          if t.edge_ok eid then begin
            nbrs.(!k) <- v;
            incr k
          end);
      let nbrs =
        if !k = Array.length nbrs then nbrs else Array.sub nbrs 0 !k
      in
      Rng.shuffle_in_place rng nbrs;
      Array.iter
        (fun v ->
          if
            (not !found)
            && (not (v = src || t.parent.(v) >= 0))
            && (v = dst || ok v)
          then begin
            t.parent.(v) <- u;
            if v = dst then found := true
            else begin
              t.queue.(!tail) <- v;
              incr tail
            end
          end)
        nbrs
    done;
    if not !found then None
    else begin
      let rec walk v acc =
        if v = src then v :: acc else walk t.parent.(v) (v :: acc)
      in
      Some (walk dst [])
    end
  end

let route t ~input ~output =
  if busy t input || busy t output then
    invalid_arg "Greedy.route: endpoint already busy";
  let ok v = t.allowed v && not (Bitset.mem t.busy_set v) in
  if not (ok input && ok output) then None
  else begin
    let path =
      match t.rng with
      | None ->
          Traverse.shortest_path_into ~allowed:ok ~edge_ok:t.edge_ok
            t.net.Network.graph ~src:input ~dst:output ~parent:t.parent
            ~queue:t.queue
      | Some rng -> route_shuffled t rng ~src:input ~dst:output
    in
    (match path with
    | Some p -> List.iter (Bitset.add t.busy_set) p
    | None -> ());
    path
  end

let release t path = List.iter (Bitset.remove t.busy_set) path

let occupy t path = List.iter (Bitset.add t.busy_set) path

(* Buffer variants of route/release/occupy: the DES call path routes into
   caller-owned arrays so a steady-state simulation makes no per-call
   allocations.  The deterministic BFS is delegated to
   [Traverse.shortest_path_into_buf], which shares its visit discipline
   with [shortest_path_into] — [route_into] therefore yields exactly the
   path [route] would have returned as a list. *)
let route_into t ~input ~output ~buf =
  if t.rng <> None then
    invalid_arg "Greedy.route_into: not available on a shuffled router";
  if busy t input || busy t output then
    invalid_arg "Greedy.route_into: endpoint already busy";
  let ok v = t.allowed v && not (Bitset.mem t.busy_set v) in
  if not (ok input && ok output) then -1
  else begin
    let len =
      Traverse.shortest_path_into_buf ~allowed:ok ~edge_ok:t.edge_ok
        t.net.Network.graph ~src:input ~dst:output ~parent:t.parent
        ~queue:t.queue ~buf
    in
    for i = 0 to len - 1 do
      Bitset.add t.busy_set buf.(i)
    done;
    len
  end

let release_buf t buf ~len =
  for i = 0 to len - 1 do
    Bitset.remove t.busy_set buf.(i)
  done

let occupy_buf t buf ~len =
  for i = 0 to len - 1 do
    Bitset.add t.busy_set buf.(i)
  done

let route_many t requests =
  List.map (fun (i, o) -> (i, o, route t ~input:i ~output:o)) requests

let route_permutation t pi ~success =
  let inputs = t.net.Network.inputs and outputs = t.net.Network.outputs in
  Array.init (Array.length pi) (fun i ->
      match route t ~input:inputs.(i) ~output:outputs.(pi.(i)) with
      | Some p ->
          incr success;
          Some p
      | None -> None)

let clear t = Bitset.clear t.busy_set
