module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Traverse = Ftcsn_graph.Traverse
module Bitset = Ftcsn_util.Bitset

type t = {
  net : Network.t;
  allowed : int -> bool;
  edge_ok : int -> bool;
  busy_set : Bitset.t;
  (* BFS scratch, so repeated routing calls don't allocate *)
  parent : int array;
  queue : int array;
}

let create ?(allowed = fun _ -> true) ?(edge_ok = fun _ -> true) net =
  let n = Digraph.vertex_count net.Network.graph in
  {
    net;
    allowed;
    edge_ok;
    busy_set = Bitset.create n;
    parent = Array.make n (-1);
    queue = Array.make n 0;
  }

let network t = t.net

let busy t v = Bitset.mem t.busy_set v

let route t ~input ~output =
  if busy t input || busy t output then
    invalid_arg "Greedy.route: endpoint already busy";
  let ok v = t.allowed v && not (Bitset.mem t.busy_set v) in
  if not (ok input && ok output) then None
  else begin
    let path =
      Traverse.shortest_path_into ~allowed:ok ~edge_ok:t.edge_ok
        t.net.Network.graph ~src:input ~dst:output ~parent:t.parent
        ~queue:t.queue
    in
    (match path with
    | Some p -> List.iter (Bitset.add t.busy_set) p
    | None -> ());
    path
  end

let release t path = List.iter (Bitset.remove t.busy_set) path

let route_many t requests =
  List.map (fun (i, o) -> (i, o, route t ~input:i ~output:o)) requests

let route_permutation t pi ~success =
  let inputs = t.net.Network.inputs and outputs = t.net.Network.outputs in
  Array.init (Array.length pi) (fun i ->
      match route t ~input:inputs.(i) ~output:outputs.(pi.(i)) with
      | Some p ->
          incr success;
          Some p
      | None -> None)

let clear t = Bitset.clear t.busy_set
