(** Beneš rearrangeable networks [B] and the looping algorithm.

    B(n) for n a power of two: a column of n/2 2×2 switches, two recursive
    B(n/2) halves, and an output column — size 4·(n/2)·(2 log₂ n − 1) =
    Θ(n log n), matching the Shannon lower bound [S].  The looping
    algorithm 2-colours the request graph (a union of two perfect
    matchings, hence even cycles) to split any permutation across the two
    halves, yielding vertex-disjoint routes for every permutation — the
    constructive proof of rearrangeability.

    In the graph formalism of the paper, a 2×2 switch is the complete
    bipartite graph K₂,₂ on wire vertices, so each switch contributes four
    graph edges (switch crosspoints). *)

type t

val make : int -> t
(** [make n] for n ≥ 2 a power of two.  @raise Invalid_argument otherwise. *)

val network : t -> Network.t

val create : int -> Network.t
(** [network (make n)] — for callers that only need the graph. *)

val route : t -> Ftcsn_util.Perm.t -> int list array
(** [route t pi] = vertex-disjoint paths, one per input [i], from input
    vertex [i] to output vertex [pi.(i)].  Paths include both endpoints.
    @raise Invalid_argument when the permutation arity differs from n. *)

val switch_columns : t -> int
(** 2 log₂ n − 1. *)
