(** Beneš rearrangeable networks [B] and the looping algorithm.

    B(n) for n a power of two: a column of n/2 2×2 switches, two recursive
    B(n/2) halves, and an output column — size 4·(n/2)·(2 log₂ n − 1) =
    Θ(n log n), matching the Shannon lower bound [S].  The looping
    algorithm 2-colours the request graph (a union of two perfect
    matchings, hence even cycles) to split any permutation across the two
    halves, yielding vertex-disjoint routes for every permutation — the
    constructive proof of rearrangeability.

    In the graph formalism of the paper, a 2×2 switch is the complete
    bipartite graph K₂,₂ on wire vertices, so each switch contributes four
    graph edges (switch crosspoints). *)

(** The recursive block structure, exposed for structure-aware routers
    (the looping router steers a single request down this tree instead of
    searching the flat graph).  [ins]/[outs] are vertex ids; at a [Split],
    entry switch [i] joins [ins.(2i)], [ins.(2i+1)] to [top_in.(i)],
    [bot_in.(i)] (complete bipartite), and symmetrically for the output
    column. *)
type node =
  | Switch of { ins : int array; outs : int array }
  | Split of {
      ins : int array;
      outs : int array;
      top_in : int array;
      bot_in : int array;
      top_out : int array;
      bot_out : int array;
      top : node;
      bot : node;
    }

type t

val make : int -> t
(** [make n] for n ≥ 2 a power of two.  @raise Invalid_argument otherwise. *)

val root : t -> node

val network : t -> Network.t

val create : int -> Network.t
(** [network (make n)] — for callers that only need the graph. *)

val route : t -> Ftcsn_util.Perm.t -> int list array
(** [route t pi] = vertex-disjoint paths, one per input [i], from input
    vertex [i] to output vertex [pi.(i)].  Paths include both endpoints.
    @raise Invalid_argument when the permutation arity differs from n. *)

val switch_columns : t -> int
(** 2 log₂ n − 1. *)
