module Digraph = Ftcsn_graph.Digraph
module Perm = Ftcsn_util.Perm

type node =
  | Switch of { ins : int array; outs : int array }
  | Split of {
      ins : int array;
      outs : int array;
      top_in : int array;
      bot_in : int array;
      top_out : int array;
      bot_out : int array;
      top : node;
      bot : node;
    }

type t = {
  net : Network.t;
  root : node;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let k22 b ~srcs ~dsts =
  Array.iter
    (fun s ->
      Array.iter (fun d -> ignore (Digraph.Builder.add_edge b ~src:s ~dst:d)) dsts)
    srcs

let rec build b ins =
  let n = Array.length ins in
  if n = 2 then begin
    let outs = Array.init 2 (fun _ -> Digraph.Builder.add_vertex b) in
    k22 b ~srcs:ins ~dsts:outs;
    (Switch { ins; outs }, outs)
  end
  else begin
    let half = n / 2 in
    let top_in = Array.init half (fun _ -> Digraph.Builder.add_vertex b) in
    let bot_in = Array.init half (fun _ -> Digraph.Builder.add_vertex b) in
    for i = 0 to half - 1 do
      k22 b
        ~srcs:[| ins.(2 * i); ins.((2 * i) + 1) |]
        ~dsts:[| top_in.(i); bot_in.(i) |]
    done;
    let top, top_out = build b top_in in
    let bot, bot_out = build b bot_in in
    let outs = Array.init n (fun _ -> Digraph.Builder.add_vertex b) in
    for i = 0 to half - 1 do
      k22 b
        ~srcs:[| top_out.(i); bot_out.(i) |]
        ~dsts:[| outs.(2 * i); outs.((2 * i) + 1) |]
    done;
    (Split { ins; outs; top_in; bot_in; top_out; bot_out; top; bot }, outs)
  end

let make n =
  if not (is_power_of_two n) || n < 2 then
    invalid_arg "Benes.make: n must be a power of two >= 2";
  let b = Digraph.Builder.create () in
  let inputs = Array.init n (fun _ -> Digraph.Builder.add_vertex b) in
  let root, outputs = build b inputs in
  let net =
    Network.make
      ~name:(Printf.sprintf "benes-%d" n)
      ~graph:(Digraph.Builder.freeze b) ~inputs ~outputs
  in
  { net; root }

let network t = t.net

let create n = network (make n)

(* Looping algorithm: two requests sharing an input switch (or an output
   switch) must take different halves.  The constraint graph is a union
   of two perfect matchings, i.e. a disjoint union of even cycles, which
   we 2-colour by walking each cycle. *)
let loop_colour pi =
  let n = Array.length pi in
  let colour = Array.make n (-1) in
  let inv = Perm.inverse pi in
  (* request r conflicts with the request sharing its input switch and the
     one sharing its output switch; the conflict graph is a union of two
     perfect matchings, hence even cycles, hence 2-colourable by BFS. *)
  let in_partner r = r lxor 1 in
  let out_partner r = inv.(pi.(r) lxor 1) in
  let stack = Stack.create () in
  for start = 0 to n - 1 do
    if colour.(start) = -1 then begin
      colour.(start) <- 0;
      Stack.push start stack;
      while not (Stack.is_empty stack) do
        let r = Stack.pop stack in
        List.iter
          (fun p ->
            if colour.(p) = -1 then begin
              colour.(p) <- 1 - colour.(r);
              Stack.push p stack
            end)
          [ in_partner r; out_partner r ]
      done
    end
  done;
  colour

let rec route_node node pi =
  let n = Array.length pi in
  match node with
  | Switch { ins; outs } ->
      Array.init n (fun i -> [ ins.(i); outs.(pi.(i)) ])
  | Split { ins; outs; top_in = _; bot_in = _; top_out = _; bot_out = _; top; bot }
    ->
      let half = n / 2 in
      let colour = loop_colour pi in
      (* build sub-permutations on switch indices *)
      let top_pi = Array.make half (-1) and bot_pi = Array.make half (-1) in
      for r = 0 to n - 1 do
        let isw = r / 2 and osw = pi.(r) / 2 in
        if colour.(r) = 0 then top_pi.(isw) <- osw else bot_pi.(isw) <- osw
      done;
      let top_paths = route_node top top_pi in
      let bot_paths = route_node bot bot_pi in
      Array.init n (fun r ->
          let isw = r / 2 in
          let mid =
            if colour.(r) = 0 then top_paths.(isw) else bot_paths.(isw)
          in
          (ins.(r) :: mid) @ [ outs.(pi.(r)) ])

let route t pi =
  let n = Network.n_inputs t.net in
  if Array.length pi <> n then invalid_arg "Benes.route: arity";
  if not (Perm.is_valid pi) then invalid_arg "Benes.route: not a permutation";
  route_node t.root pi

let switch_columns t =
  let n = Network.n_inputs t.net in
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  (2 * log2 n) - 1

let root t = t.root
