(** Superconcentration on a pair of butterflies (Bradley, PAPERS.md).

    Two k-dimensional butterflies concatenated back to back — the
    second with its bit order mirrored — form a superconcentrator on
    n = 2^k terminals: the Beneš topology read as a flow network.
    Bradley's result is that the pair (under dilation-1 embeddings)
    superconcentrates; here it gives the registry a Θ(n log n)
    superconcentrator contender far denser in paths than a single
    butterfly (4nk edges, depth 2k) yet much smaller than the paper's
    fault-tolerant Θ(n log² n) construction. *)

val make : int -> Network.t
(** [make n] for n a power of two ≥ 2.  @raise Invalid_argument otherwise. *)
