type spec = { family : string; args : (string * string) list }

exception Spec_error of string

let spec_error fmt = Printf.ksprintf (fun msg -> raise (Spec_error msg)) fmt

(* ---------- spec mini-language ---------- *)

let looks_like_int s =
  s <> ""
  && String.for_all (fun c -> c >= '0' && c <= '9') s

let parse s =
  match String.split_on_char ':' s with
  | [] | [ "" ] -> Error "empty network spec"
  | family :: rest -> (
      try
        if family = "" then spec_error "invalid network spec %S: empty family" s;
        let args =
          List.map
            (fun component ->
              if component = "" then
                spec_error "invalid network spec %S: empty component" s;
              match String.index_opt component '=' with
              | Some i ->
                  let key = String.sub component 0 i in
                  let value =
                    String.sub component (i + 1)
                      (String.length component - i - 1)
                  in
                  if key = "" then
                    spec_error "invalid network spec %S: empty parameter name"
                      s;
                  (key, value)
              | None ->
                  if looks_like_int component then ("n", component)
                  else (component, ""))
            rest
        in
        let rec check_dup = function
          | [] -> ()
          | (k, _) :: tl ->
              if List.mem_assoc k tl then
                spec_error "duplicate parameter %S in spec %S" k s
              else check_dup tl
        in
        check_dup args;
        Ok { family; args }
      with Spec_error msg -> Error msg)

let to_string { family; args } =
  String.concat ":"
    (family
    :: List.map
         (function
           | "n", v -> v  (* canonical shorthand *)
           | k, "" -> k
           | k, v -> k ^ "=" ^ v)
         args)

(* ---------- generator signature ---------- *)

type param = { key : string; pdoc : string; kind : [ `Int | `Flag ] }

type gen = {
  name : string;
  aliases : string list;
  doc : string;
  params : param list;
  exact_pow2 : bool;
  build : args:(string * string) list -> n:int -> rng:Ftcsn_prng.Rng.t -> Network.t;
}

let int_arg ~family args key ~default =
  match List.assoc_opt key args with
  | None -> default
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> i
      | None ->
          spec_error "parameter %S of family %s: %S is not an integer" key
            family v)

let int_arg_opt ~family args key =
  match List.assoc_opt key args with
  | None -> None
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Some i
      | None ->
          spec_error "parameter %S of family %s: %S is not an integer" key
            family v)

let flag_arg args key = List.mem_assoc key args

(* ---------- registry ---------- *)

let registry : (string, gen) Hashtbl.t = Hashtbl.create 32
let canonical : gen list ref = ref []

let register g =
  List.iter
    (fun key ->
      if Hashtbl.mem registry key then
        invalid_arg
          (Printf.sprintf "Topology.register: family %S already registered" key))
    (g.name :: g.aliases);
  List.iter (fun key -> Hashtbl.replace registry key g) (g.name :: g.aliases);
  canonical := g :: !canonical

let find name = Hashtbl.find_opt registry name

let all () =
  List.sort (fun a b -> compare a.name b.name) !canonical

let names () = List.map (fun g -> g.name) (all ())

(* ---------- building ---------- *)

type built = {
  gen : gen;
  spec : spec;
  net : Network.t;
  n_requested : int;
  n_effective : int;
}

let log2_ceil n =
  let rec go k acc = if acc >= n then k else go (k + 1) (acc * 2) in
  go 0 1

let pow2_ceil n = max 2 (1 lsl log2_ceil n)

let is_pow2 n = n >= 2 && n land (n - 1) = 0

let validate_args gen args =
  List.iter
    (fun (key, value) ->
      if key = "n" then begin
        if int_of_string_opt value = None then
          spec_error "parameter \"n\" of family %s: %S is not an integer"
            gen.name value
      end
      else
        match List.find_opt (fun p -> p.key = key) gen.params with
        | None ->
            let known =
              match List.map (fun p -> p.key) gen.params with
              | [] -> "family takes no parameters besides n"
              | keys -> "known: " ^ String.concat ", " keys
            in
            spec_error "unknown parameter %S for family %s (%s)" key gen.name
              known
        | Some { kind = `Flag; _ } ->
            if value <> "" then
              spec_error "parameter %S of family %s is a flag and takes no value"
                key gen.name
        | Some { kind = `Int; _ } -> ())
    args

let build ?n ~rng spec =
  match find spec.family with
  | None ->
      Error
        (Printf.sprintf "unknown network family %S (known: %s)" spec.family
           (String.concat ", " (names ())))
  | Some gen -> (
      try
        validate_args gen spec.args;
        let n_requested =
          match int_arg_opt ~family:gen.name spec.args "n" with
          | Some i -> i
          | None -> (
              match n with
              | Some i -> i
              | None ->
                  spec_error "family %s: no terminal count given (append :N \
                              to the spec or pass -n)" gen.name)
        in
        if n_requested < 1 then
          spec_error "family %s: n must be an integer >= 1 (got %d)" gen.name
            n_requested;
        if gen.exact_pow2 && not (is_pow2 n_requested) then
          spec_error
            "family %s requires n to be a power of two >= 2 (got %d; nearest \
             is %d)"
            gen.name n_requested (pow2_ceil n_requested);
        let net =
          try gen.build ~args:spec.args ~n:n_requested ~rng
          with Invalid_argument msg ->
            spec_error "family %s: %s" gen.name msg
        in
        Ok
          {
            gen;
            spec;
            net;
            n_requested;
            n_effective = Network.n_inputs net;
          }
      with Spec_error msg -> Error msg)

let build_string ?n ~rng s =
  match parse s with
  | Error msg -> Error msg
  | Ok spec -> build ?n ~rng spec

(* ---------- built-in families ---------- *)

let no_params = []

let simple ?(aliases = []) ?(params = no_params) ?(exact_pow2 = false) name doc
    build =
  { name; aliases; doc; params; exact_pow2; build }

let () =
  List.iter register
    [
      simple "benes" "Benes rearrangeable network (n rounded up to a power of two)"
        (fun ~args:_ ~n ~rng:_ -> Benes.create (pow2_ceil n));
      simple "butterfly" "plain butterfly: unique paths, no fault tolerance"
        (fun ~args:_ ~n ~rng:_ -> Butterfly.make (pow2_ceil n));
      simple "multibutterfly"
        "Leighton-Maggs multibutterfly with seeded-random splitters"
        ~params:
          [ { key = "degree"; pdoc = "edges into each half-block (default 2)"; kind = `Int } ]
        (fun ~args ~n ~rng ->
          let degree = int_arg ~family:"multibutterfly" args "degree" ~default:2 in
          Multibutterfly.make ~rng ~degree (pow2_ceil n));
      simple "cantor" "Cantor network: log n parallel Benes copies, strictly nonblocking"
        ~params:
          [ { key = "copies"; pdoc = "parallel Benes copies (default log2 n)"; kind = `Int } ]
        (fun ~args ~n ~rng:_ ->
          match int_arg_opt ~family:"cantor" args "copies" with
          | Some copies -> Cantor.make ~copies (pow2_ceil n)
          | None -> Cantor.make (pow2_ceil n));
      simple "crossbar" "n x m crossbar: one switch per terminal pair"
        ~params:
          [ { key = "m"; pdoc = "output count (default n, i.e. square)"; kind = `Int } ]
        (fun ~args ~n ~rng:_ ->
          match int_arg_opt ~family:"crossbar" args "m" with
          | Some m -> Crossbar.make ~n ~m ()
          | None -> Crossbar.square n);
      simple "clos" "three-stage Clos, strictly nonblocking (m = 2k-1)"
        ~params:
          [ { key = "rearr"; pdoc = "rearrangeable sizing (m = k) instead"; kind = `Flag } ]
        (fun ~args ~n ~rng:_ ->
          if flag_arg args "rearr" then Clos.rearrangeable ~n
          else Clos.nonblocking ~n);
      simple "clos-rearr" "three-stage Clos, rearrangeable sizing (preset for clos:rearr)"
        (fun ~args:_ ~n ~rng:_ -> Clos.rearrangeable ~n);
      simple "valiant-sc" ~aliases:[ "valiant" ]
        "linear-size superconcentrator (Valiant/Gabber-Galil recursion)"
        ~params:
          [
            { key = "degree"; pdoc = "concentrator degree (default 6)"; kind = `Int };
            { key = "cutoff"; pdoc = "crossbar cutoff size (default 8)"; kind = `Int };
          ]
        (fun ~args ~n ~rng ->
          let degree = int_arg ~family:"valiant-sc" args "degree" ~default:6 in
          let cutoff = int_arg ~family:"valiant-sc" args "cutoff" ~default:8 in
          Valiant_sc.make ~rng ~degree ~cutoff n);
      simple "recursive-nb" ~aliases:[ "recursive" ]
        "Pippenger [P82] recursive strictly-nonblocking construction (scaled)"
        ~params:
          [ { key = "levels"; pdoc = "recursion levels (default from n)"; kind = `Int } ]
        (fun ~args ~n ~rng ->
          let levels =
            match int_arg_opt ~family:"recursive-nb" args "levels" with
            | Some l -> l
            | None -> max 1 ((log2_ceil n + 1) / 2)
          in
          let net, _ =
            Recursive_nb.make ~rng ~params:(Recursive_nb.scaled_params ())
              ~levels
          in
          net);
      simple "multistage" "recursive Clos of limited depth (Pippenger-Yao regime)"
        ~params:
          [
            { key = "levels"; pdoc = "recursive Clos levels (default 2)"; kind = `Int };
            { key = "k"; pdoc = "ingress ports per level (default balanced)"; kind = `Int };
          ]
        (fun ~args ~n ~rng:_ ->
          let levels = int_arg ~family:"multistage" args "levels" ~default:2 in
          let k = int_arg_opt ~family:"multistage" args "k" in
          Multistage.create ?k ~levels n);
      simple "delta" ~exact_pow2:true
        "delta network: butterfly wiring with reversed bit order, unique paths"
        (fun ~args:_ ~n ~rng:_ -> Delta.delta n);
      simple "omega" ~exact_pow2:true
        "omega network: log n perfect-shuffle/exchange stages, unique paths"
        (fun ~args:_ ~n ~rng:_ -> Delta.omega n);
      simple "banyan" ~exact_pow2:true
        "SW-banyan (baseline wiring): recursive inverse shuffles, unique paths"
        (fun ~args:_ ~n ~rng:_ -> Delta.banyan n);
      simple "butterfly-pair" ~aliases:[ "bradley" ] ~exact_pow2:true
        "Bradley superconcentrator: a butterfly concatenated with its mirror"
        (fun ~args:_ ~n ~rng:_ -> Butterfly_pair.make n);
    ]
