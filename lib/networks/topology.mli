(** The topology registry: one generator signature for every network
    family in the repository.

    Each family registers a {!gen} — a name, a one-line doc string, a
    parameter schema and a [build] function — and every consumer (the
    [ftnet] CLI, the bench experiment tables, the test suites, the
    tournament) iterates the registry instead of hand-wiring
    constructors.  Registering one new family makes it buildable from
    the command line, benchmarked, smoke-tested and entered in the
    reliability tournament with no further wiring.

    {2 Spec mini-language}

    A network is denoted by a spec string

    {v FAMILY[:ARG]... v}

    where each [ARG] is either a bare integer (shorthand for [n=INT]),
    a [KEY=VALUE] pair, or a bare flag name.  Examples:

    {v benes:16        clos:n=64:rearr        multibutterfly:n=32:degree=4 v}

    [n] is the requested terminal count and is understood by every
    family; all other keys must appear in the family's parameter
    schema.  Families snap [n] to their natural grid (most round up to
    a power of two); the {!built} record reports both the requested
    and the effective terminal count so callers can warn.  Families
    with [exact_pow2 = true] refuse, rather than round, a
    non-power-of-two [n].

    All failures are reported as [Error msg] with a normalized,
    human-readable message (no exceptions escape {!build}). *)

type spec = {
  family : string;
  args : (string * string) list;
      (** in spec order; flags carry [""] as their value *)
}

val parse : string -> (spec, string) result
(** Parse a spec string.  Rejects empty components, malformed integers
    only at {!build} time (parsing is purely lexical), and duplicate
    keys. *)

val to_string : spec -> string
(** Canonical rendering: [parse (to_string s) = Ok s] for every spec
    [parse] accepts, and [to_string] of a parsed string is that string
    up to the [n=] shorthand. *)

(** {2 Generator signature} *)

type param = {
  key : string;
  pdoc : string;
  kind : [ `Int  (** integer-valued, [key=INT] *) | `Flag  (** present/absent *) ];
}

type gen = {
  name : string;  (** canonical family name, also the spec prefix *)
  aliases : string list;  (** alternative spellings accepted by {!find} *)
  doc : string;  (** one line for [ftnet topologies] *)
  params : param list;  (** schema of accepted keys besides [n] *)
  exact_pow2 : bool;
      (** refuse (rather than round) an [n] that is not a power of two *)
  build : args:(string * string) list -> n:int -> rng:Ftcsn_prng.Rng.t -> Network.t;
      (** [args] are validated against [params] before the call; [n] is
          the requested terminal count (the builder applies its own
          rounding); [rng] is consumed only by seeded-random families. *)
}

exception Spec_error of string
(** Raised by the argument helpers below (and allowed from [build]
    bodies); {!build} converts it to [Error]. *)

val int_arg : family:string -> (string * string) list -> string -> default:int -> int
(** Look up an integer argument, falling back to [default].
    @raise Spec_error when the value is not an integer. *)

val int_arg_opt : family:string -> (string * string) list -> string -> int option

val flag_arg : (string * string) list -> string -> bool

(** {2 Registry} *)

val register : gen -> unit
(** @raise Invalid_argument when the name or an alias is already
    taken.  The built-in families of this library are registered at
    module initialisation; the paper's [ft] family registers from the
    core library via [Ftcsn.Ft_topology.install]. *)

val find : string -> gen option
(** By canonical name or alias. *)

val all : unit -> gen list
(** Every registered generator, sorted by canonical name. *)

val names : unit -> string list
(** Canonical names, sorted. *)

(** {2 Building} *)

type built = {
  gen : gen;
  spec : spec;
  net : Network.t;
  n_requested : int;
  n_effective : int;  (** [Network.n_inputs net] — differs when rounded *)
}

val build : ?n:int -> rng:Ftcsn_prng.Rng.t -> spec -> (built, string) result
(** Resolve the family, validate every argument against the schema,
    and build.  The terminal count comes from the spec's [n] argument
    when present, else from [?n]; it is an error to supply neither.
    Constructor [Invalid_argument] exceptions are converted to
    [Error "family NAME: ..."]. *)

val build_string : ?n:int -> rng:Ftcsn_prng.Rng.t -> string -> (built, string) result
(** [parse] then [build]. *)

val pow2_ceil : int -> int
(** Smallest power of two ≥ [max 2 n] — the rounding most families
    apply to [n]. *)
