module Digraph = Ftcsn_graph.Digraph

let log2_exact n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Butterfly_pair.make: n must be a power of two >= 2";
  let rec go k acc = if acc = n then k else go (k + 1) (acc * 2) in
  go 0 1

let make n =
  let k = log2_exact n in
  let b = Digraph.Builder.create () in
  let _first = Digraph.Builder.add_vertices b (((2 * k) + 1) * n) in
  let id level row = (level * n) + row in
  for level = 0 to (2 * k) - 1 do
    (* first butterfly crosses bit ℓ; the mirrored one crosses them in
       reverse order — the Beneš wiring without the shared middle column *)
    let bit = if level < k then level else (2 * k) - 1 - level in
    for row = 0 to n - 1 do
      ignore (Digraph.Builder.add_edge b ~src:(id level row) ~dst:(id (level + 1) row));
      ignore
        (Digraph.Builder.add_edge b ~src:(id level row)
           ~dst:(id (level + 1) (row lxor (1 lsl bit))))
    done
  done;
  Network.make
    ~name:(Printf.sprintf "butterfly-pair-%d" n)
    ~graph:(Digraph.Builder.freeze b)
    ~inputs:(Array.init n (fun row -> id 0 row))
    ~outputs:(Array.init n (fun row -> id (2 * k) row))
