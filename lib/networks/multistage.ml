module Digraph = Ftcsn_graph.Digraph
module Perm = Ftcsn_util.Perm

type node =
  | Leaf of { ins : int array; outs : int array }
  | Node of {
      k : int;
      r : int;
      ins : int array;
      outs : int array;
      l1 : int array array; (* r ingress switches x k middles *)
      l2 : int array array; (* k middles x r egress switches *)
      middles : node array;
    }

type t = {
  net : Network.t;
  root : node;
  exposed : int;
  full : int;
  levels : int;
  k : int;
}

let ipow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let complete_bipartite b srcs dsts =
  Array.iter
    (fun s ->
      Array.iter (fun d -> ignore (Digraph.Builder.add_edge b ~src:s ~dst:d)) dsts)
    srcs

let rec build b ins outs levels k =
  let n = Array.length ins in
  if levels = 0 then begin
    complete_bipartite b ins outs;
    Leaf { ins; outs }
  end
  else begin
    let r = n / k in
    let l1 =
      Array.init r (fun _ -> Array.init k (fun _ -> Digraph.Builder.add_vertex b))
    in
    let l2 =
      Array.init k (fun _ -> Array.init r (fun _ -> Digraph.Builder.add_vertex b))
    in
    for i = 0 to r - 1 do
      complete_bipartite b (Array.sub ins (i * k) k) l1.(i)
    done;
    for e = 0 to r - 1 do
      complete_bipartite b
        (Array.init k (fun j -> l2.(j).(e)))
        (Array.sub outs (e * k) k)
    done;
    let middles =
      Array.init k (fun j ->
          let sub_ins = Array.init r (fun i -> l1.(i).(j)) in
          let sub_outs = l2.(j) in
          build b sub_ins sub_outs (levels - 1) k)
    in
    Node { k; r; ins; outs; l1; l2; middles }
  end

let default_k ~levels n =
  let rec go k = if ipow k (levels + 1) >= n then k else go (k + 1) in
  go 2

let make ?k ~levels n =
  if n < 1 || levels < 0 then invalid_arg "Multistage.make";
  let k =
    match k with
    | Some k when k >= 2 -> k
    | Some _ -> invalid_arg "Multistage.make: k >= 2"
    | None -> if n = 1 then 2 else default_k ~levels n
  in
  let full = ipow k (levels + 1) in
  if full < n then invalid_arg "Multistage.make: k^(levels+1) < n";
  let b = Digraph.Builder.create () in
  let ins = Array.init full (fun _ -> Digraph.Builder.add_vertex b) in
  let outs = Array.init full (fun _ -> Digraph.Builder.add_vertex b) in
  let root = build b ins outs levels k in
  let net =
    Network.make
      ~name:(Printf.sprintf "multistage-n%d-t%d-k%d" n levels k)
      ~graph:(Digraph.Builder.freeze b)
      ~inputs:(Array.sub ins 0 n) ~outputs:(Array.sub outs 0 n)
  in
  { net; root; exposed = n; full; levels; k }

let network t = t.net

let create ?k ~levels n = network (make ?k ~levels n)

let stage_count t = (2 * t.levels) + 1

(* recursive Slepian-Duguid: a full permutation splits into k sub-
   permutations, one per middle, because the request multigraph is exactly
   k-regular *)
let rec route_node node pi =
  match node with
  | Leaf { ins; outs } -> Array.init (Array.length pi) (fun i -> [ ins.(i); outs.(pi.(i)) ])
  | Node { k; r; ins; outs; l1; l2; middles } ->
      let n = Array.length pi in
      let requests = Array.init n (fun i -> (i / k, pi.(i) / k)) in
      let middle_of = Clos.slepian_duguid ~k ~r requests in
      (* per-middle sub-permutation on switch indices, and the request
         each (middle, ingress) pair serves *)
      let sub_pi = Array.init k (fun _ -> Array.make r (-1)) in
      let req_of = Array.init k (fun _ -> Array.make r (-1)) in
      for i = 0 to n - 1 do
        let j = middle_of.(i) in
        let a = i / k and bsw = pi.(i) / k in
        sub_pi.(j).(a) <- bsw;
        req_of.(j).(a) <- i
      done;
      let paths = Array.make n [] in
      Array.iteri
        (fun j sub ->
          if not (Perm.is_valid sub) then
            invalid_arg "Multistage.route: decomposition not a permutation";
          let sub_paths = route_node middles.(j) sub in
          Array.iteri
            (fun a sub_path ->
              let i = req_of.(j).(a) in
              paths.(i) <- (ins.(i) :: sub_path) @ [ outs.(pi.(i)) ])
            sub_paths)
        sub_pi;
      ignore l1;
      ignore l2;
      paths

let route t pi =
  if Array.length pi <> t.exposed then invalid_arg "Multistage.route: arity";
  if not (Perm.is_valid pi) then invalid_arg "Multistage.route: not a permutation";
  (* extend to the padded width: spare inputs map to spare outputs *)
  let used = Array.make t.full false in
  Array.iter (fun o -> used.(o) <- true) pi;
  let spare = ref [] in
  for o = t.full - 1 downto 0 do
    if not used.(o) then spare := o :: !spare
  done;
  let spare = ref !spare in
  let full_pi =
    Array.init t.full (fun i ->
        if i < t.exposed then pi.(i)
        else begin
          match !spare with
          | o :: rest ->
              spare := rest;
              o
          | [] -> assert false
        end)
  in
  let all = route_node t.root full_pi in
  Array.sub all 0 t.exposed
