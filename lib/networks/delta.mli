(** The classical log-depth unique-path (banyan-class) networks:
    delta, omega and SW-banyan wirings.

    All three connect n = 2^k wire rows through k stages of 2×2
    switching, so every input–output pair is joined by exactly one
    path (2nk switch edges, depth k).  They differ only in the
    inter-stage wiring:

    - {!delta} crosses bit [k−1−ℓ] at stage ℓ — the butterfly with the
      bit order reversed (the delta network of Patel);
    - {!omega} applies a perfect shuffle (left bit rotation) followed
      by an exchange at every stage (Lawrie's omega network);
    - {!banyan} applies an inverse shuffle within recursively halving
      blocks — the baseline wiring of the SW-banyan.

    With no path diversity, a single fault on the unique path severs a
    terminal pair: these are the fragile extreme of the tournament,
    the counterpoint to the paper's fault-tolerant construction. *)

val delta : int -> Network.t
(** [delta n] for n a power of two ≥ 2.  @raise Invalid_argument otherwise. *)

val omega : int -> Network.t

val banyan : int -> Network.t
