(** Depth-parameterised rearrangeable networks: recursive Clos.

    Pippenger and Yao [PY] (cited in the paper's references) study
    rearrangeable networks of limited depth; the classical instances are
    recursive Clos networks: a 3-stage Clos C(k, k, r) whose r×r middle
    crossbars are themselves replaced by recursive instances.  Depth
    2t+1 stages cost Θ(t·n^{1+1/(t+1)}) switches — interpolating between
    the crossbar (t = 0) and Beneš (t = lg n − 1, k = 2).

    Routing recurses the Slepian–Duguid matching decomposition: the top
    level assigns every request a middle subnetwork, which is itself a
    rearrangeable instance one level shallower. *)

type t

val make : ?k:int -> levels:int -> int -> t
(** [make ~levels n] — a rearrangeable network on [n] terminals with
    [levels] recursive Clos levels (0 = plain crossbar, 1 = 3-stage Clos,
    …).  [k] fixes the ingress port count per level (default: balanced,
    k ≈ n^{1/(levels+1)}).  n is padded up as needed; the network exposes
    exactly [n] terminals. *)

val network : t -> Network.t

val create : ?k:int -> levels:int -> int -> Network.t
(** [network (make ?k ~levels n)] — for callers that only need the graph. *)

val route : t -> Ftcsn_util.Perm.t -> int list array
(** Vertex-disjoint paths realising the permutation, by recursive
    matching decomposition.  @raise Invalid_argument on arity mismatch. *)

val stage_count : t -> int
(** 2·levels + 1 crossbar stages. *)
