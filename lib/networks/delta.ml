module Digraph = Ftcsn_graph.Digraph

let log2_exact ~who n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg (who ^ ": n must be a power of two >= 2");
  let rec go k acc = if acc = n then k else go (k + 1) (acc * 2) in
  go 0 1

(* k stages over n wire rows; [ports ~level ~row] gives the two next-stage
   rows reachable from (level, row) *)
let wired ~who ~prefix ~ports n =
  let k = log2_exact ~who n in
  let b = Digraph.Builder.create () in
  let _first = Digraph.Builder.add_vertices b ((k + 1) * n) in
  let id level row = (level * n) + row in
  for level = 0 to k - 1 do
    for row = 0 to n - 1 do
      let d0, d1 = ports ~k ~level ~row in
      ignore (Digraph.Builder.add_edge b ~src:(id level row) ~dst:(id (level + 1) d0));
      ignore (Digraph.Builder.add_edge b ~src:(id level row) ~dst:(id (level + 1) d1))
    done
  done;
  Network.make
    ~name:(Printf.sprintf "%s-%d" prefix n)
    ~graph:(Digraph.Builder.freeze b)
    ~inputs:(Array.init n (fun row -> id 0 row))
    ~outputs:(Array.init n (fun row -> id k row))

let delta n =
  wired ~who:"Delta.delta" ~prefix:"delta" n ~ports:(fun ~k ~level ~row ->
      (row, row lxor (1 lsl (k - 1 - level))))

let omega n =
  wired ~who:"Delta.omega" ~prefix:"omega" n ~ports:(fun ~k ~level:_ ~row ->
      (* perfect shuffle: left rotation of the k-bit row, then exchange *)
      let s = ((row lsl 1) land (n - 1)) lor (row lsr (k - 1)) in
      (s, s lxor 1))

let banyan n =
  wired ~who:"Delta.banyan" ~prefix:"banyan" n ~ports:(fun ~k ~level ~row ->
      (* baseline wiring: inverse shuffle within the current block; the
         blocks halve at every stage *)
      let sb = k - level in
      let size = 1 lsl sb in
      let local = row land (size - 1) in
      let base = row - local in
      let inv x = (x lsr 1) lor ((x land 1) lsl (sb - 1)) in
      (base + inv (local land lnot 1), base + inv (local lor 1)))
